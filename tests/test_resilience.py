"""Tests for the fault-injection plane and the resilient serving wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EtaGraphConfig, MemoryMode
from repro.core.session import EngineSession
from repro.errors import (
    ConfigError,
    DataCorruptionError,
    DeadlineExceededError,
    DeviceOutOfMemoryError,
    MigrationStallError,
    SessionClosedError,
    TransferError,
)
from repro.gpu.device import GTX_1080TI
from repro.resilience import (
    FAULT_KINDS,
    STALL_WATCHDOG_MS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    LADDER,
    ResilientSession,
    RetryPolicy,
)
from repro.resilience.chaos import result_digest
from repro.testing.differential import oracle_labels
from repro.utils.units import MIB

ALL_MODES = (
    MemoryMode.DEVICE,
    MemoryMode.UM_PREFETCH,
    MemoryMode.UM_ON_DEMAND,
    MemoryMode.ZERO_COPY,
)


def plan(*specs: FaultSpec, seed: int = 7) -> FaultPlan:
    return FaultPlan(specs=tuple(specs), seed=seed)


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            FaultSpec("not_a_kind", at=0)
        with pytest.raises(ConfigError):
            FaultSpec("alloc_oom", at=-1)
        with pytest.raises(ConfigError):
            FaultSpec("alloc_oom", at=0, count=0)

    def test_spec_covers_window(self):
        spec = FaultSpec("transfer_fault", at=2, count=3)
        assert [spec.covers(i) for i in range(6)] == \
            [False, False, True, True, True, False]

    def test_random_plan_is_seed_deterministic(self):
        plans = [FaultPlan.random(np.random.default_rng(11)) for _ in range(2)]
        assert plans[0] == plans[1]
        other = FaultPlan.random(np.random.default_rng(12))
        # Different seed, different plan (seed field alone guarantees it).
        assert other != plans[0]

    def test_random_plan_specs_are_valid(self):
        for seed in range(50):
            for spec in FaultPlan.random(seed).specs:
                assert spec.kind in FAULT_KINDS
                assert spec.at >= 0 and spec.count >= 1

    def test_describe_names_every_spec(self):
        p = plan(
            FaultSpec("alloc_oom", at=1),
            FaultSpec("um_stall", at=0, count=2, param=5.0),
        )
        text = p.describe()
        assert "alloc_oom@1" in text
        assert "um_stall@0x2(5)" in text


# ----------------------------------------------------------------------
# FaultInjector hooks
# ----------------------------------------------------------------------


class TestFaultInjector:
    def test_alloc_oom_fires_on_schedule(self):
        inj = FaultInjector(plan(FaultSpec("alloc_oom", at=2)))
        inj.on_alloc("a", 10, 0, 100)  # event 0
        inj.on_alloc("b", 10, 10, 100)  # event 1
        with pytest.raises(DeviceOutOfMemoryError) as exc:
            inj.on_alloc("c", 10, 20, 100)  # event 2
        assert (exc.value.requested, exc.value.in_use, exc.value.capacity) \
            == (10, 20, 100)
        inj.on_alloc("d", 10, 20, 100)  # event 3: schedule consumed
        assert inj.events["alloc_oom"] == 4
        assert inj.fired == ["alloc_oom: c (10 B)"]

    def test_transfer_fault_is_typed(self):
        inj = FaultInjector(plan(FaultSpec("transfer_fault", at=0)))
        with pytest.raises(TransferError):
            inj.on_transfer("h2d", 4096)
        inj.on_transfer("d2h", 4096)  # consumed

    def test_um_stall_below_watchdog_returns_stall_ms(self):
        inj = FaultInjector(plan(FaultSpec("um_stall", at=0, param=50.0)))
        assert inj.on_um_migration(1 * MIB) == 50.0
        assert inj.on_um_migration(1 * MIB) == 0.0

    def test_um_stall_at_watchdog_raises(self):
        inj = FaultInjector(plan(
            FaultSpec("um_stall", at=0, param=STALL_WATCHDOG_MS)
        ))
        with pytest.raises(MigrationStallError):
            inj.on_um_migration(1 * MIB)

    def test_bitflip_corrupts_one_bit_then_raises(self):
        inj = FaultInjector(plan(FaultSpec("bitflip", at=0)))
        labels = np.full(16, 3, dtype=np.int32)
        before = labels.copy()
        with pytest.raises(DataCorruptionError):
            inj.on_kernel_launch(labels)
        changed = np.nonzero(labels != before)[0]
        assert len(changed) == 1
        xor = int(labels[changed[0]]) ^ int(before[changed[0]])
        assert xor != 0 and xor & (xor - 1) == 0  # exactly one bit

    def test_memo_invalidate_flushes_session_memo(self):
        class FakeSession:
            memo_entries = 3

            def __init__(self):
                self.flushed = 0

            def invalidate_memo(self):
                self.flushed += 1

        inj = FaultInjector(plan(FaultSpec("memo_invalidate", at=0)))
        session = FakeSession()
        inj.on_memo_lookup(session)
        inj.on_memo_lookup(session)
        assert session.flushed == 1
        assert inj.fired == ["memo_invalidate: 3 entries dropped"]

    def test_injector_rng_is_plan_seeded(self):
        flips = []
        for _ in range(2):
            inj = FaultInjector(plan(FaultSpec("bitflip", at=0), seed=21))
            labels = np.zeros(64, dtype=np.int32)
            with pytest.raises(DataCorruptionError):
                inj.on_kernel_launch(labels)
            flips.append(inj.fired[0])
        assert flips[0] == flips[1]


# ----------------------------------------------------------------------
# ResilientSession: no-fault bit-identity
# ----------------------------------------------------------------------


class TestNoFaultIdentity:
    @pytest.mark.parametrize("mode", ALL_MODES, ids=lambda m: m.value)
    def test_bit_identical_to_engine_session(self, skewed_graph, mode):
        config = EtaGraphConfig(memory_mode=mode)
        with EngineSession(skewed_graph, config) as plain, \
                ResilientSession(skewed_graph, config) as resilient:
            for source in (0, 3):
                expected = result_digest(plain.query("bfs", source))
                outcome = resilient.run("bfs", source)
                assert result_digest(outcome.result) == expected
                assert outcome.num_attempts == 1
                assert not outcome.degraded
                assert outcome.faults_seen == []

    @pytest.mark.parametrize("mode,rung", [
        (MemoryMode.DEVICE, "device"),
        (MemoryMode.UM_PREFETCH, "um_prefetch"),
        (MemoryMode.UM_ON_DEMAND, "um_oversubscribed"),
        (MemoryMode.ZERO_COPY, "zero_copy"),
    ], ids=lambda v: getattr(v, "value", v))
    def test_entry_rung_matches_memory_mode(self, tiny_graph, mode, rung):
        with ResilientSession(
            tiny_graph, EtaGraphConfig(memory_mode=mode)
        ) as rs:
            assert rs.entry_rung == rung
            outcome = rs.run("bfs", 0)
            assert outcome.requested_placement == rung
            assert outcome.final_placement == rung

    def test_memo_invalidation_does_not_change_results(self, skewed_graph):
        config = EtaGraphConfig()
        with ResilientSession(skewed_graph, config) as nominal, \
                ResilientSession(
                    skewed_graph, config,
                    fault_plan=plan(
                        FaultSpec("memo_invalidate", at=0, count=64)
                    ),
                ) as chaotic:
            for source in (0, 1, 2):
                expected = nominal.run("bfs", source)
                outcome = chaotic.run("bfs", source)
                assert result_digest(outcome.result) == \
                    result_digest(expected.result)
                assert outcome.num_attempts == 1  # pure perf fault


# ----------------------------------------------------------------------
# ResilientSession: retries, budgets, degradation
# ----------------------------------------------------------------------


class TestRetryAndDegrade:
    def test_transient_transfer_fault_is_retried_same_rung(self, skewed_graph):
        rs = ResilientSession(
            skewed_graph,
            fault_plan=plan(FaultSpec("transfer_fault", at=0)),
            policy=RetryPolicy(max_retries=2, backoff_base_ms=1.5),
        )
        with rs:
            outcome = rs.run("bfs", 0)
        assert [a.rung for a in outcome.attempts] == \
            ["um_prefetch", "um_prefetch"]
        assert outcome.attempts[0].error.startswith("TransferError")
        assert outcome.attempts[0].backoff_ms == 1.5
        assert outcome.backoff_ms == 1.5
        assert outcome.retried and not outcome.degraded
        assert len(outcome.faults_seen) == 1
        assert np.array_equal(
            outcome.labels, oracle_labels(skewed_graph, "bfs", 0)
        )

    def test_backoff_doubles_per_retry(self, skewed_graph):
        rs = ResilientSession(
            skewed_graph,
            fault_plan=plan(FaultSpec("transfer_fault", at=0, count=2)),
            policy=RetryPolicy(max_retries=2, backoff_base_ms=1.0),
        )
        with rs:
            outcome = rs.run("bfs", 0)
        assert [a.backoff_ms for a in outcome.attempts] == [1.0, 2.0, 0.0]
        assert outcome.backoff_ms == 3.0

    def test_bitflip_detected_and_retried(self, skewed_graph):
        rs = ResilientSession(
            skewed_graph,
            fault_plan=plan(FaultSpec("bitflip", at=0)),
        )
        with rs:
            outcome = rs.run("bfs", 0)
        assert outcome.retried
        assert outcome.attempts[0].error.startswith("DataCorruptionError")
        assert np.array_equal(
            outcome.labels, oracle_labels(skewed_graph, "bfs", 0)
        )

    def test_um_stall_below_watchdog_only_slows_the_query(self, skewed_graph):
        config = EtaGraphConfig(memory_mode=MemoryMode.UM_ON_DEMAND)
        with ResilientSession(skewed_graph, config) as nominal:
            baseline = nominal.run("bfs", 0)
        rs = ResilientSession(
            skewed_graph, config,
            fault_plan=plan(FaultSpec("um_stall", at=0, param=50.0)),
        )
        with rs:
            outcome = rs.run("bfs", 0)
        assert outcome.num_attempts == 1 and not outcome.degraded
        assert any("um_stall" in f for f in outcome.faults_seen)
        assert outcome.result.total_ms > baseline.result.total_ms
        assert np.array_equal(outcome.labels, baseline.labels)

    def test_um_stall_watchdog_demotes(self, skewed_graph):
        rs = ResilientSession(
            skewed_graph,
            EtaGraphConfig(memory_mode=MemoryMode.UM_ON_DEMAND),
            fault_plan=plan(
                FaultSpec("um_stall", at=0, count=64,
                          param=2 * STALL_WATCHDOG_MS)
            ),
            policy=RetryPolicy(max_retries=0),
        )
        with rs:
            outcome = rs.run("bfs", 0)
        assert outcome.degraded
        assert outcome.attempts[0].rung == "um_oversubscribed"
        assert outcome.attempts[0].error.startswith("MigrationStallError")
        assert np.array_equal(
            outcome.labels, oracle_labels(skewed_graph, "bfs", 0)
        )

    def test_persistent_oom_descends_whole_ladder_to_cpu(self, skewed_graph):
        rs = ResilientSession(
            skewed_graph,
            EtaGraphConfig(memory_mode=MemoryMode.DEVICE),
            fault_plan=plan(FaultSpec("alloc_oom", at=0, count=10_000)),
        )
        with rs:
            outcome = rs.run("bfs", 0)
        assert [a.rung for a in outcome.attempts] == list(LADDER)
        assert outcome.final_placement == "cpu_oracle"
        assert outcome.degraded
        assert outcome.result.extras["cpu_oracle"]
        assert outcome.result.kernel_ms == 0.0
        assert np.array_equal(
            outcome.labels, oracle_labels(skewed_graph, "bfs", 0)
        )

    def test_cpu_fallback_can_be_disallowed(self, skewed_graph):
        rs = ResilientSession(
            skewed_graph,
            fault_plan=plan(FaultSpec("alloc_oom", at=0, count=10_000)),
            policy=RetryPolicy(allow_cpu_fallback=False),
        )
        with rs, pytest.raises(DeviceOutOfMemoryError):
            rs.run("bfs", 0)

    def test_genuine_oom_marks_rung_dead(self, skewed_graph):
        # A device too small for the topology: the device rung's OOM is
        # genuine (requested + in_use > capacity), so it is retired and
        # the next query skips straight to a UM rung.
        device = GTX_1080TI.with_capacity(8 * 1024)
        rs = ResilientSession(
            skewed_graph,
            EtaGraphConfig(memory_mode=MemoryMode.DEVICE),
            device,
        )
        with rs:
            first = rs.run("bfs", 0)
            assert first.attempts[0].rung == "device"
            assert first.attempts[0].error is not None
            assert "device" in rs.dead_rungs
            second = rs.run("bfs", 1)
        assert all(a.rung != "device" for a in second.attempts)
        assert second.degraded
        assert np.array_equal(
            second.labels, oracle_labels(skewed_graph, "bfs", 1)
        )

    def test_injected_oom_does_not_kill_the_rung(self, skewed_graph):
        # Injected OOM on a roomy device is transient from the ladder's
        # point of view: the rung demotes this query but stays available.
        rs = ResilientSession(
            skewed_graph,
            fault_plan=plan(FaultSpec("alloc_oom", at=0)),
        )
        with rs:
            first = rs.run("bfs", 0)
            assert first.degraded
            assert rs.dead_rungs == set()
            second = rs.run("bfs", 0)
        assert not second.degraded

    def test_wall_deadline_raises_typed_error(self, skewed_graph):
        rs = ResilientSession(
            skewed_graph, policy=RetryPolicy(deadline_ms=0.0)
        )
        with rs, pytest.raises(DeadlineExceededError):
            rs.run("bfs", 0)

    def test_iteration_budget_raises_typed_error(self, path10):
        # BFS on a 10-vertex path needs ~9 iterations; budget one.
        rs = ResilientSession(path10, policy=RetryPolicy(max_iterations=1))
        with rs, pytest.raises(DeadlineExceededError):
            rs.run("bfs", 0)

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_base_ms=-0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(deadline_ms=-1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(max_iterations=0)


# ----------------------------------------------------------------------
# ResilientSession: lifecycle and determinism
# ----------------------------------------------------------------------


class TestSessionMechanics:
    def test_closed_session_raises_typed_error(self, tiny_graph):
        rs = ResilientSession(tiny_graph)
        rs.close()
        assert rs.closed
        with pytest.raises(SessionClosedError):
            rs.run("bfs", 0)
        rs.close()  # idempotent

    def test_query_is_engine_session_compatible(self, tiny_graph):
        with ResilientSession(tiny_graph) as rs:
            result = rs.query("bfs", 0)
        assert np.array_equal(
            result.labels, oracle_labels(tiny_graph, "bfs", 0)
        )

    def test_same_plan_replays_identically(self, skewed_graph):
        def serve():
            rs = ResilientSession(
                skewed_graph,
                fault_plan=plan(
                    FaultSpec("transfer_fault", at=1),
                    FaultSpec("bitflip", at=0),
                    seed=99,
                ),
            )
            with rs:
                outcomes = [rs.run("bfs", s) for s in (0, 1)]
                return (
                    [a for o in outcomes for a in o.attempts],
                    list(rs.injector.fired),
                    [result_digest(o.result) for o in outcomes],
                )

        assert serve() == serve()

    def test_queries_served_counts_successes_only(self, skewed_graph):
        rs = ResilientSession(
            skewed_graph, policy=RetryPolicy(deadline_ms=0.0)
        )
        with rs:
            with pytest.raises(DeadlineExceededError):
                rs.run("bfs", 0)
            assert rs.queries_served == 0
        rs2 = ResilientSession(skewed_graph)
        with rs2:
            rs2.run("bfs", 0)
            assert rs2.queries_served == 1
