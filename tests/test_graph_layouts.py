"""Tests for the alternative layouts: CSC, EdgeList, G-Shards, VST.

Covers both structural correctness and the Table I space-overhead ratios
the paper reports (G-Shard/EdgeList 2|E| ~ 1.87x CSR on LiveJournal-like
degree graphs; VST ~ 1.32x).
"""

import numpy as np
import pytest

from repro.errors import ConfigError, GraphFormatError
from repro.graph import generators
from repro.graph.csc import CSCGraph
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.gshard import GShards
from repro.graph.vst import VirtualSplitGraph


class TestCSC:
    def test_in_degrees(self):
        g = CSRGraph.from_edges([0, 1, 2], [2, 2, 1], num_vertices=3)
        csc = CSCGraph.from_csr(g)
        assert list(csc.in_degrees()) == [0, 1, 2]
        assert sorted(csc.predecessors(2)) == [0, 1]

    def test_edge_count_preserved(self, skewed_graph):
        csc = CSCGraph.from_csr(skewed_graph)
        assert csc.num_edges == skewed_graph.num_edges
        assert csc.num_vertices == skewed_graph.num_vertices

    def test_space_matches_csr(self, skewed_graph):
        csc = CSCGraph.from_csr(skewed_graph)
        assert csc.topology_words() == skewed_graph.topology_words()


class TestEdgeList:
    def test_roundtrip(self, skewed_graph):
        el = EdgeList.from_csr(skewed_graph)
        assert el.to_csr() == skewed_graph

    def test_topology_words_is_2E(self, skewed_graph):
        el = EdgeList.from_csr(skewed_graph)
        assert el.topology_words() == 2 * skewed_graph.num_edges

    def test_length_mismatch_rejected(self):
        with pytest.raises(GraphFormatError):
            EdgeList(np.array([0, 1]), np.array([1]))

    def test_weights_carried(self, weighted_skewed_graph):
        el = EdgeList.from_csr(weighted_skewed_graph)
        assert el.weights is not None
        assert el.to_csr() == weighted_skewed_graph


class TestGShards:
    def test_every_edge_in_its_destination_window(self, skewed_graph):
        gs = GShards(skewed_graph, window_size=32)
        for i in range(gs.num_shards):
            sl = gs.shard_slice(i)
            dst = gs.shard_dst[sl]
            assert np.all(dst // 32 == i)

    def test_sorted_by_source_within_shard(self, skewed_graph):
        gs = GShards(skewed_graph, window_size=64)
        for i in range(gs.num_shards):
            src = gs.shard_src[gs.shard_slice(i)]
            assert np.all(np.diff(src) >= 0)

    def test_edge_multiset_preserved(self, skewed_graph):
        gs = GShards(skewed_graph, window_size=16)
        orig = set(zip(skewed_graph.edge_sources().tolist(),
                       skewed_graph.column_indices.tolist()))
        shard = set(zip(gs.shard_src.tolist(), gs.shard_dst.tolist()))
        assert orig == shard

    def test_topology_words_is_2E(self, skewed_graph):
        gs = GShards.from_csr(skewed_graph)
        assert gs.topology_words() == 2 * skewed_graph.num_edges

    def test_device_arrays_include_value_slots(self, skewed_graph):
        arrays = GShards.from_csr(skewed_graph).device_arrays()
        assert "shard_src_values" in arrays
        assert "shard_edge_values" in arrays
        assert len(arrays["shard_src_values"]) == skewed_graph.num_edges

    def test_invalid_window_rejected(self, skewed_graph):
        with pytest.raises(GraphFormatError):
            GShards(skewed_graph, window_size=0)

    def test_single_window_graph(self):
        g = generators.complete_graph(4)
        gs = GShards(g, window_size=100)
        assert gs.num_shards == 1
        assert gs.num_edges == g.num_edges


class TestVST:
    def test_virtual_degree_bound(self, skewed_graph):
        vst = VirtualSplitGraph(skewed_graph, degree_bound=8)
        assert vst.virtual_degrees().max() <= 8

    def test_edge_partition_exact(self, skewed_graph):
        """Union of virtual-node slices == original adjacency, disjoint."""
        vst = VirtualSplitGraph(skewed_graph, degree_bound=8)
        starts = vst.virtual_start.astype(np.int64)
        ends = vst.virtual_ends().astype(np.int64)
        covered = np.zeros(skewed_graph.num_edges, dtype=np.int32)
        for s, e in zip(starts, ends):
            covered[s:e] += 1
        assert np.all(covered == 1)

    def test_virtual_count_formula(self, skewed_graph):
        k = 8
        vst = VirtualSplitGraph(skewed_graph, degree_bound=k)
        deg = skewed_graph.out_degrees().astype(np.int64)
        assert vst.num_virtual == int(np.ceil(deg / k).sum())

    def test_zero_degree_vertices_get_no_virtual_nodes(self):
        g = CSRGraph.from_edges([0], [1], num_vertices=5)
        vst = VirtualSplitGraph(g, degree_bound=4)
        assert vst.num_virtual == 1
        assert vst.real_virtual_count[1] == 0

    def test_owner_ranges_consistent(self, skewed_graph):
        vst = VirtualSplitGraph(skewed_graph, degree_bound=4)
        for v in (0, 1, skewed_graph.num_vertices - 1):
            first = int(vst.real_first_virtual[v])
            count = int(vst.real_virtual_count[v])
            assert np.all(vst.virtual_owner[first : first + count] == v)

    def test_topology_words_formula(self, skewed_graph):
        vst = VirtualSplitGraph(skewed_graph, degree_bound=8)
        g = skewed_graph
        assert vst.topology_words() == (
            g.num_edges + 2 * vst.num_virtual + 2 * g.num_vertices
        )

    def test_invalid_bound_rejected(self, skewed_graph):
        with pytest.raises(ConfigError):
            VirtualSplitGraph(skewed_graph, degree_bound=0)

    def test_scalar_end_matches_vector(self, skewed_graph):
        vst = VirtualSplitGraph(skewed_graph, degree_bound=8)
        ends = vst.virtual_ends()
        for i in (0, 1, vst.num_virtual - 1):
            assert vst.virtual_end(i) == int(ends[i])


class TestTable1Ratios:
    """The paper's Table I: normalized topology usage on a LiveJournal-like
    degree distribution (avg degree ~14).  Exact paper values are 1.87 /
    1.87 / 1.32 / 1.0; the ratio depends only on |E|/|V| and the split
    count, so a scaled surrogate reproduces it closely."""

    @pytest.fixture(scope="class")
    def lj_like(self):
        return generators.social_network(8192, 8192 * 14, seed=42)

    def test_edge_list_ratio(self, lj_like):
        ratio = (2 * lj_like.num_edges) / lj_like.topology_words()
        assert 1.7 < ratio < 2.0

    def test_gshard_ratio(self, lj_like):
        ratio = GShards.from_csr(lj_like).topology_words() / lj_like.topology_words()
        assert 1.7 < ratio < 2.0

    def test_vst_ratio(self, lj_like):
        # Table I uses K = 10 for the |N| accounting.
        vst = VirtualSplitGraph(lj_like, degree_bound=10)
        ratio = vst.topology_words() / lj_like.topology_words()
        assert 1.1 < ratio < 1.5
