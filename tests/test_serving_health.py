"""Tests of the self-healing service plane: lane health scoring,
circuit breakers with warm standby, hedged requests, brownout control,
retry jitter, and the health on/off bit-identity gate."""

import numpy as np
import pytest

from repro.errors import ConfigError, QuotaExceededError
from repro.graph import generators
from repro.resilience.chaos import result_digest
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.session import ResilientSession, RetryPolicy
from repro.serving import (
    HealthPlane,
    HealthPolicy,
    SessionPool,
    TenantQuota,
    TraversalService,
    VisitRequest,
    check_health_identity,
)


@pytest.fixture
def graph():
    """A 40-vertex random graph, large enough for multi-level BFS."""
    return generators.erdos_renyi(40, 160, seed=7)


def _sick_lane_service(graph, *, max_retries=0, health=None, **kwargs):
    """Pool of 2 where lane 0 fails through a finite sustained
    transfer-fault window and lane 1 stays clean."""
    plan = FaultPlan(
        specs=(FaultSpec(kind="transfer_fault", at=0, count=12),)
    )
    return TraversalService(
        graph, pool_size=2, fault_plans={0: plan},
        policy=RetryPolicy(max_retries=max_retries),
        health=health if health is not None else HealthPolicy(open_ms=2.0),
        default_quota=TenantQuota(max_pending=256),
        **kwargs,
    )


class TestHealthPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            HealthPolicy(ewma_alpha=0.0)
        with pytest.raises(ConfigError):
            HealthPolicy(tainted_quality=1.0)
        with pytest.raises(ConfigError):
            HealthPolicy(failure_threshold=0)
        with pytest.raises(ConfigError):
            HealthPolicy(hedge_min_samples=0)
        with pytest.raises(ConfigError):
            # Ladder thresholds must be ordered.
            HealthPolicy(brownout_admission=0.9, brownout_hedge=0.5)

    def test_defaults_construct(self):
        policy = HealthPolicy()
        assert policy.breakers and policy.hedge and policy.brownout


class TestScoring:
    def test_clean_serves_keep_score_at_exactly_one(self, graph):
        with TraversalService(graph, pool_size=2, health=True) as service:
            for i in range(10):
                assert service.call(VisitRequest(source=i)).ok
            # The EWMA of a constant 1.0 is exactly 1.0 — the fixed
            # point the on/off identity gate relies on.
            assert service.lane_health == {0: 1.0, 1: 1.0}
            assert service.health.level == 0
            assert not service.health.events

    def test_infra_failures_sink_the_score(self, graph):
        with _sick_lane_service(
            graph, health=HealthPolicy(breakers=False, brownout=False),
        ) as service:
            for i in range(20):
                service.call(VisitRequest(source=i % 40))
            assert service.lane_health[0] < 1.0
            assert service.lane_health[1] == 1.0

    def test_non_infra_errors_are_neutral(self, graph):
        with TraversalService(graph, pool_size=1, health=True) as service:
            # A spent deadline says nothing about the lane underneath.
            response = service.call(VisitRequest(source=0, deadline_ms=0.0))
            assert not response.ok
            assert service.lane_health[0] == 1.0

    def test_stats_endpoint_exposes_health(self, graph):
        from repro.serving import StatsRequest

        with TraversalService(graph, pool_size=2, health=True) as service:
            value = service.call(StatsRequest()).value
            assert value["num_vertices"] == graph.num_vertices
            snapshot = value["health"]
            assert snapshot["brownout_level"] == 0
            assert [lane["state"] for lane in snapshot["lanes"]] == \
                ["closed", "closed"]
        # Health off: the stats payload is exactly the graph summary.
        with TraversalService(graph, pool_size=1) as service:
            assert "health" not in service.call(StatsRequest()).value


class TestBreakerLifecycle:
    def test_open_swaps_in_warm_standby_at_same_instant(self, graph):
        with _sick_lane_service(graph) as service:
            for _ in range(2):
                service.serve([
                    VisitRequest(source=i % 40) for i in range(30)
                ])
            events = service.health.events
            opens = [e for e in events if e.kind == "open"]
            assert opens
            for open_event in opens:
                # Standby built before retirement: every open pairs with
                # a same-lane replace at the same simulated instant, so
                # capacity never dips.
                index = events.index(open_event)
                replace = events[index + 1]
                assert replace.kind == "replace"
                assert replace.lane == open_event.lane == 0
                assert replace.t_ms == open_event.t_ms
            assert service.pool.size == 2
            assert service.pool.workers[0].generation == len(opens)
            assert service.pool.workers[1].generation == 0

    def test_quarantine_pushes_busy_until_past_window(self, graph):
        with _sick_lane_service(
            graph, health=HealthPolicy(open_ms=50.0),
        ) as service:
            service.serve([VisitRequest(source=i) for i in range(12)])
            lane = service.health.lanes[0]
            assert lane.state == "open"
            assert service.pool.workers[0].busy_until_ms >= lane.open_until

    def test_standby_inherits_injector(self, graph):
        with _sick_lane_service(
            graph, health=HealthPolicy(open_ms=50.0),
        ) as service:
            old_injector = service.pool.workers[0].session.injector
            service.serve([VisitRequest(source=i) for i in range(12)])
            assert service.pool.workers[0].generation == 1
            # Fault-event counters keep advancing across the swap: the
            # finite window drains instead of restarting.
            assert service.pool.workers[0].session.injector is old_injector

    def test_full_recovery_arc(self, graph):
        with _sick_lane_service(graph) as service:
            for _ in range(4):
                service.serve([
                    VisitRequest(source=i % 40) for i in range(30)
                ])
            kinds = [e.kind for e in service.health.events]
            for kind in ("open", "replace", "half_open", "closed"):
                assert kind in kinds, f"missing {kind} in {kinds}"
            assert kinds.index("open") < kinds.index("half_open") \
                < kinds.index("closed")
            lane = service.health.lanes[0]
            assert lane.state == "closed"
            assert lane.closes >= 1
            assert lane.opens >= lane.closes

    def test_min_active_floor_skips_quarantine(self, graph):
        # A 1-lane pool can't quarantine its only lane: the standby
        # still swaps in, but the lane stays dispatchable.
        plan = FaultPlan(
            specs=(FaultSpec(kind="transfer_fault", at=0, count=16),)
        )
        with TraversalService(
            graph, pool_size=1, fault_plans={0: plan},
            policy=RetryPolicy(max_retries=0, allow_cpu_fallback=False),
            health=HealthPolicy(open_ms=50.0),
            default_quota=TenantQuota(max_pending=256),
        ) as service:
            responses = service.serve([
                VisitRequest(source=i % 40) for i in range(30)
            ])
            assert len(responses) == 30
            lane = service.health.lanes[0]
            assert lane.opens >= 1
            # No 50 ms dead air: the clock never jumped the full window.
            assert any(r.ok for r in responses[-5:])


class TestHedging:
    def _straggler(self, graph, hedge):
        specs = tuple(
            FaultSpec(kind="transfer_fault", at=at, count=2)
            for at in range(4, 120, 12)
        )
        service = TraversalService(
            graph, pool_size=2, fault_plans={0: FaultPlan(specs=specs)},
            policy=RetryPolicy(max_retries=6, backoff_base_ms=2.0),
            health=HealthPolicy(
                breakers=False, brownout=False, hedge=hedge,
            ),
            default_quota=TenantQuota(max_pending=256),
        )
        responses = []
        with service:
            for i in range(40):
                response = service.call(VisitRequest(source=i))
                assert response.ok, response.error
                responses.append(response)
            stats = (service.health.hedges, service.health.hedge_wins)
        return responses, stats

    def test_hedge_cuts_p99_without_changing_digests(self, graph):
        off, _ = self._straggler(graph, hedge=False)
        on, (hedges, wins) = self._straggler(graph, hedge=True)
        assert hedges > 0 and wins > 0
        assert [result_digest(r.result) for r in off] == \
            [result_digest(r.result) for r in on]
        p99_off, p99_on = (
            float(np.percentile([r.service_ms for r in leg], 99))
            for leg in (off, on)
        )
        assert p99_on < p99_off

    def test_hedged_runs_are_deterministic(self, graph):
        a, stats_a = self._straggler(graph, hedge=True)
        b, stats_b = self._straggler(graph, hedge=True)
        assert stats_a == stats_b
        assert [(r.finish_ms, r.hedged, r.hedge_won) for r in a] == \
            [(r.finish_ms, r.hedged, r.hedge_won) for r in b]

    def test_won_hedge_moves_only_the_finish(self, graph):
        off, _ = self._straggler(graph, hedge=False)
        on, _ = self._straggler(graph, hedge=True)
        winners = 0
        for base, hedged in zip(off, on):
            # Lane attribution, placement and start stay the primary's;
            # only a *won* hedge moves the finish (earlier, never later).
            assert hedged.worker == base.worker
            assert hedged.placement == base.placement
            assert hedged.start_ms == base.start_ms
            if hedged.hedge_won:
                winners += 1
                assert hedged.finish_ms < base.finish_ms
            else:
                assert hedged.finish_ms == base.finish_ms
        assert winners > 0

    def test_healthy_lanes_never_hedge(self, graph):
        with TraversalService(graph, pool_size=2, health=True) as service:
            for i in range(30):
                service.call(VisitRequest(source=i))
            assert service.health.hedges == 0


class TestBrownout:
    def _plane(self, graph, pool_size=2, **policy):
        pool = SessionPool(graph, size=pool_size)
        return HealthPlane(HealthPolicy(**policy), pool), pool

    def test_ladder_levels(self, graph):
        plane, pool = self._plane(graph, breakers=False)
        worker = pool.workers[0]
        levels = [plane.level]
        for _ in range(30):
            plane.observe(worker, ok=False, error_type="TransferError")
            if plane.level != levels[-1]:
                levels.append(plane.level)
        # One lane dying drags a 2-lane mean through the ladder.
        assert levels[0] == 0
        assert levels == sorted(levels)
        assert plane.level >= 2
        assert plane.effective_wave_width(8) == 4
        pool.close()

    def test_level_four_refuses_admissions(self, graph):
        with TraversalService(
            graph, pool_size=1,
            policy=RetryPolicy(max_retries=0, allow_cpu_fallback=False),
            fault_plans={0: FaultPlan(specs=(
                FaultSpec(kind="transfer_fault", at=0, count=200),
            ))},
            health=HealthPolicy(breakers=False),
            default_quota=TenantQuota(max_pending=512),
        ) as service:
            # Sink the only lane, then offer a fresh batch: admission
            # itself is refused at level 4, as a terminal typed response.
            # The sink requests carry deadlines so level-3 best-effort
            # shedding can't starve the observation feed on the way down.
            service.serve([
                VisitRequest(source=i, deadline_ms=10000.0)
                for i in range(12)
            ])
            assert service.health.level == 4
            with pytest.raises(QuotaExceededError):
                service.submit(VisitRequest(source=0))
            responses = service.serve(
                [VisitRequest(source=i) for i in range(6)]
            )
            assert len(responses) == 6
            for response in responses:
                assert not response.ok
                assert response.error.startswith("QuotaExceededError")
                assert "brownout" in response.error

    def test_level_three_sheds_best_effort_only(self, graph):
        with TraversalService(
            graph, pool_size=1,
            policy=RetryPolicy(max_retries=0),
            fault_plans={0: FaultPlan(specs=(
                FaultSpec(kind="transfer_fault", at=0, count=30),
            ))},
            health=HealthPolicy(
                breakers=False, brownout_admission=0.01,
            ),
            default_quota=TenantQuota(max_pending=512),
        ) as service:
            # Sink the lane first, then offer a mixed batch.
            service.serve([VisitRequest(source=i) for i in range(12)])
            assert service.health.shed_best_effort
            responses = service.serve(
                [VisitRequest(source=0)]
                + [VisitRequest(source=1, deadline_ms=1000.0)]
            )
            best_effort, deadlined = responses
            assert best_effort.shed
            assert "brownout" in best_effort.error
            assert not deadlined.shed


class TestHealthIdentity:
    def test_plane_is_observational_on_healthy_paths(self, graph):
        assert check_health_identity(graph) == []
        assert check_health_identity(graph, resilient=True) == []

    def test_identity_covers_clocks_not_just_labels(self, graph):
        # The gate must compare schedules: build two services and check
        # the full response facts agree, including finish_ms.
        from repro.serving.identity import _response_facts

        runs = []
        for health in (None, True):
            with TraversalService(
                graph, pool_size=2, health=health,
            ) as service:
                runs.append(service.serve(
                    [VisitRequest(source=i) for i in range(6)]
                ))
        for off, on in zip(*runs):
            assert _response_facts(off) == _response_facts(on)


class TestRetryJitter:
    def test_jitter_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.5)

    def _backoff(self, graph, jitter, jitter_seed):
        plan = FaultPlan(
            specs=(FaultSpec(kind="transfer_fault", at=0, count=1),)
        )
        with ResilientSession(
            graph, fault_plan=plan,
            policy=RetryPolicy(max_retries=2, backoff_base_ms=1.0,
                               jitter=jitter),
            jitter_seed=jitter_seed,
        ) as session:
            outcome = session.run("bfs", 0)
            assert outcome.result is not None
            return outcome.backoff_ms

    def test_zero_jitter_is_exact_exponential(self, graph):
        assert self._backoff(graph, 0.0, 0) == 1.0

    def test_jitter_is_seed_deterministic(self, graph):
        a = self._backoff(graph, 0.5, 3)
        b = self._backoff(graph, 0.5, 3)
        assert a == b
        assert 1.0 < a <= 1.5

    def test_jitter_streams_differ_across_lanes(self, graph):
        assert self._backoff(graph, 0.5, 0) != self._backoff(graph, 0.5, 1)

    def test_no_fault_run_never_draws_jitter(self, graph):
        # The identity gate's guarantee: with no retries there is no
        # jitter draw, so jitter>0 stays bit-identical on clean paths.
        from repro.resilience.chaos import check_bit_identity

        assert check_bit_identity(graph, ("bfs",), (0, 1)) == []


class TestHealChaosBattery:
    def test_trimmed_battery_holds_contract(self, graph):
        from repro.serving.chaos import run_heal_chaos

        report = run_heal_chaos(runs=12, seed=0)
        assert report.ok, report.summary()
        assert report.opens > 0
        assert report.replaces == report.opens
        assert report.recoveries >= 1
