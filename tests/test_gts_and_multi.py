"""Tests for the GTS streaming baseline, batched multi-query runner and
the additional device presets."""

import numpy as np
import pytest

from repro import EtaGraph, EtaGraphConfig, MemoryMode
from repro.algorithms import cpu_reference
from repro.baselines import GTSFramework, get_framework
from repro.core.multi import pick_sources, run_batch
from repro.errors import ConfigError
from repro.gpu.device import GTX_1080TI, TESLA_K40, TESLA_V100
from repro.graph import generators
from repro.graph.weights import attach_weights


@pytest.fixture(scope="module")
def social():
    g = attach_weights(generators.rmat(10, 15000, seed=61), seed=62)
    src = int(np.argmax(g.out_degrees()))
    return g, src


class TestGTS:
    def test_labels_correct(self, social):
        g, src = social
        r = GTSFramework().run(g, "sssp", src)
        assert np.allclose(r.labels, cpu_reference.sssp_distances(g, src))

    def test_registered_in_factory(self):
        assert get_framework("gts").name == "gts"

    def test_streams_whole_chunks(self, social):
        """The Section I critique: bytes streamed >= bytes actually used."""
        g, src = social
        r = GTSFramework().run(g, "bfs", src)
        useful = g.column_indices.nbytes
        assert r.extras["streamed_bytes"] >= useful

    def test_smaller_chunks_waste_less(self):
        """Sparse activity: smaller chunks track the active set tighter."""
        g = generators.web_chain(20_000, 200_000, depth=40, seed=7)
        big = GTSFramework(chunk_bytes=2**21).run(g, "bfs", 0)
        small = GTSFramework(chunk_bytes=2**15).run(g, "bfs", 0)
        assert small.extras["streamed_bytes"] <= big.extras["streamed_bytes"]

    def test_etagraph_on_demand_beats_gts_on_sparse_activity(self):
        """The design argument for fine-grained overlap: when only a
        pocket of the graph activates, page-granular migration moves far
        less than whole chunks."""
        g = generators.web_chain(50_000, 500_000, depth=10, pocket_size=40,
                                 pocket_depth=4, seed=8)
        gts = GTSFramework().run(g, "bfs", 0)
        eta = EtaGraph(
            g, EtaGraphConfig(memory_mode=MemoryMode.UM_ON_DEMAND)
        ).bfs(0)
        moved_eta = sum(eta.profiler.migration_sizes)
        assert moved_eta < gts.extras["streamed_bytes"]
        assert np.array_equal(eta.labels, gts.labels)

    def test_invalid_chunk_rejected(self):
        with pytest.raises(ConfigError):
            GTSFramework(chunk_bytes=100)

    def test_small_device_footprint(self, social):
        """GTS's pitch: only labels + two chunk buffers stay resident."""
        g, src = social
        r = GTSFramework().run(g, "bfs", src)
        assert r.device_bytes < g.nbytes + 2 * 2**21 + 4 * g.num_vertices * 4


class TestMultiQuery:
    def test_batch_labels_match_standalone(self, social):
        g, _ = social
        sources = pick_sources(g, 4, seed=3)
        batch = run_batch(g, sources, "bfs")
        for i, s in enumerate(sources):
            standalone = EtaGraph(g).bfs(int(s)).labels
            assert np.array_equal(batch.labels(i), standalone)

    def test_amortization_speedup(self, social):
        g, _ = social
        sources = pick_sources(g, 6, seed=4)
        batch = run_batch(g, sources, "bfs")
        assert batch.amortization_speedup > 1.0
        assert batch.total_ms < batch.naive_total_ms

    def test_shared_setup_counted_once(self, social):
        g, _ = social
        few = run_batch(g, pick_sources(g, 2, seed=5), "bfs")
        many = run_batch(g, pick_sources(g, 6, seed=5), "bfs")
        assert many.shared_setup_ms == pytest.approx(few.shared_setup_ms,
                                                     rel=0.01)

    def test_empty_batch_rejected(self, social):
        g, _ = social
        with pytest.raises(ConfigError):
            run_batch(g, [], "bfs")

    def test_pick_sources_distinct_and_eligible(self, social):
        g, _ = social
        sources = pick_sources(g, 10, seed=6, min_degree=2)
        assert len(np.unique(sources)) == len(sources)
        assert np.all(g.out_degrees()[sources] >= 2)

    def test_pick_sources_no_eligible(self):
        g = generators.star_graph(3, out=False)
        with pytest.raises(ConfigError):
            pick_sources(g, 2, min_degree=5)

    def test_pick_sources_overask_raises_by_default(self):
        """Asking for more sources than the graph can supply is a
        ConfigError under the strict default — previously it silently
        clamped, so sweeps ran fewer queries than their config claimed."""
        g = generators.star_graph(8, out=False)  # 8 leaves -> hub
        eligible = int(np.count_nonzero(g.out_degrees() >= 1))
        with pytest.raises(ConfigError, match="strict=False"):
            pick_sources(g, eligible + 1)

    def test_pick_sources_clamp_is_recorded(self):
        g = generators.star_graph(8, out=False)
        eligible = int(np.count_nonzero(g.out_degrees() >= 1))
        meta = {}
        sources = pick_sources(g, eligible + 5, strict=False, meta=meta)
        assert len(sources) == eligible
        assert meta == {
            "requested": eligible + 5,
            "delivered": eligible,
            "clamped": True,
        }
        # An in-range request records a no-op clamp.
        meta = {}
        sources = pick_sources(g, 2, strict=False, meta=meta)
        assert len(sources) == 2
        assert meta == {"requested": 2, "delivered": 2, "clamped": False}


class TestDevicePresets:
    def test_v100_capacity_matches_paper_intro(self):
        # "hardly more than 16GB (for even high-end computing cards)".
        assert TESLA_V100.memory_capacity == 16 * 2**30
        assert TESLA_V100.num_sms == 80

    def test_faster_device_runs_faster(self, social):
        g, src = social
        slow = EtaGraph(g, device=TESLA_K40).bfs(src)
        mid = EtaGraph(g, device=GTX_1080TI).bfs(src)
        fast = EtaGraph(g, device=TESLA_V100).bfs(src)
        assert fast.kernel_ms < mid.kernel_ms < slow.kernel_ms
        assert np.array_equal(fast.labels, slow.labels)
