"""Tests for the observability layer: spans, metrics, exporters, wiring.

The two hard requirements pinned here are the ones the subsystem's
design hangs on:

* telemetry-off runs are bit-identical to telemetry-on runs (labels and
  simulated clocks), and a telemetry-off result carries no trace at all;
* the exporters are byte-deterministic (golden files below), so traces
  can be diffed and CI can gate on their schema.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.config import EtaGraphConfig, MemoryMode
from repro.core.session import EngineSession
from repro.gpu.profiler import KernelCounters, Profiler
from repro.gpu.timeline import Timeline
from repro.observability import (
    CATEGORIES,
    MetricsRegistry,
    Tracer,
    load_trace,
    render_summary,
    to_chrome_trace,
    unified_snapshot,
    validate_chrome_trace,
)
from repro.observability.export import dumps_stable, to_jsonl
from repro.observability.metrics import (
    add_error_taxonomy,
    add_kernel_counters,
    series_key,
)
from repro.resilience import FaultPlan, FaultSpec, ResilientSession, RetryPolicy
from repro.resilience.chaos import check_bit_identity, result_digest
from repro.utils.intervals import intersection_length, union, union_length


# ----------------------------------------------------------------------
# Interval arithmetic (shared by Timeline and Trace.busy_ms)
# ----------------------------------------------------------------------


class TestIntervals:
    def test_union_merges_overlaps_and_touching(self):
        assert union([(0, 2), (1, 3), (3, 4), (6, 7)]) == [(0, 4), (6, 7)]

    def test_union_sorts_and_keeps_instants(self):
        # Zero-length intervals stay (they mark instants on a timeline)
        # but add nothing to the covered length.
        assert union([(5, 5), (2, 3), (0, 1)]) == [(0, 1), (2, 3), (5, 5)]
        assert union_length([(5, 5), (2, 3), (0, 1)]) == pytest.approx(2.0)

    def test_intersection_length(self):
        a = union([(0, 4), (6, 8)])
        b = union([(2, 7)])
        assert intersection_length(a, b) == pytest.approx(3.0)

    def test_union_length(self):
        assert union_length([(0, 2), (1, 3), (10, 11)]) == pytest.approx(4.0)


# ----------------------------------------------------------------------
# Tracer semantics
# ----------------------------------------------------------------------


def golden_tracer() -> Tracer:
    """The hand-built trace the golden-file tests pin down."""
    tr = Tracer()
    q = tr.start("query", "engine", 0.0, problem="bfs")
    it = tr.start("iteration", "engine", 0.0, index=0)
    tr.cursor_ms = 0.0
    tr.emit("transform", "compute", 0.25, threads=64)
    tr.emit("vertex_kernel", "compute", 0.5)
    tr.emit("um.touch", "migration", 0.125, t_ms=0.25, nbytes=4096.0)
    tr.end(it, 0.75)
    tr.end(q, 1.0, iterations=1)
    return tr


class TestTracer:
    def test_nesting_assigns_parents_in_creation_order(self):
        trace = golden_tracer().trace()
        by_name = {r.name: r for r in trace.records}
        assert by_name["query"].parent is None
        assert by_name["iteration"].parent == by_name["query"].sid
        assert by_name["transform"].parent == by_name["iteration"].sid
        assert by_name["um.touch"].parent == by_name["iteration"].sid
        assert [r.sid for r in trace.spans()] == [0, 1, 2, 3, 4]

    def test_cursor_tiles_duration_only_emits(self):
        trace = golden_tracer().trace()
        transform = trace.spans(name="transform")[0]
        kernel = trace.spans(name="vertex_kernel")[0]
        assert transform.start_ms == 0.0
        assert transform.end_ms == pytest.approx(0.25)
        assert kernel.start_ms == pytest.approx(0.25)  # tiled after it
        assert kernel.end_ms == pytest.approx(0.75)

    def test_explicit_time_leaves_cursor_alone(self):
        tr = Tracer()
        tr.cursor_ms = 1.0
        tr.emit("a", "compute", 0.5, t_ms=10.0)
        assert tr.cursor_ms == 1.0
        tr.emit("b", "compute", 0.5)
        assert trb_start(tr) == pytest.approx(1.0)
        assert tr.cursor_ms == pytest.approx(1.5)

    def test_end_attrs_merge_over_start_attrs(self):
        tr = Tracer()
        s = tr.start("q", "engine", 0.0, mode="device", warm=False)
        rec = tr.end(s, 1.0, warm=True, iterations=3)
        assert rec.attrs == {"mode": "device", "warm": True, "iterations": 3}

    def test_end_of_outer_span_aborts_inner_ones(self):
        tr = Tracer()
        outer = tr.start("outer", "engine", 0.0)
        tr.start("inner", "engine", 0.5)
        tr.end(outer, 2.0)
        inner_rec = [r for r in tr.records if r.name == "inner"][0]
        outer_rec = [r for r in tr.records if r.name == "outer"][0]
        assert inner_rec.attrs == {"aborted": True}
        assert inner_rec.end_ms == outer_rec.end_ms == 2.0
        assert tr.depth == 0

    def test_ending_a_closed_span_raises(self):
        tr = Tracer()
        s = tr.start("q", "engine", 0.0)
        tr.end(s, 1.0)
        with pytest.raises(ValueError, match="not open"):
            tr.end(s, 2.0)

    def test_unwind_closes_everything_with_attrs(self):
        tr = Tracer()
        tr.start("a", "engine", 0.0)
        tr.start("b", "engine", 1.0)
        tr.unwind(5.0, error="TransferError")
        assert tr.depth == 0
        assert all(r.attrs == {"error": "TransferError"} for r in tr.records)
        assert all(r.end_ms == 5.0 for r in tr.records)

    def test_base_ms_shifts_recorded_times(self):
        tr = Tracer()
        tr.base_ms = 100.0
        s = tr.start("attempt", "resilience", 0.0)
        tr.emit("kernel", "compute", 2.0, t_ms=1.0)
        tr.end(s, 3.0)
        starts = {r.name: r.start_ms for r in tr.records}
        assert starts == {"kernel": 101.0, "attempt": 100.0}
        assert tr.max_end_ms == 103.0

    def test_negative_duration_clamps_to_instant(self):
        tr = Tracer()
        s = tr.start("q", "engine", 5.0)
        rec = tr.end(s, 3.0)  # clock confusion must not corrupt the file
        assert rec.end_ms == rec.start_ms == 5.0


def trb_start(tr: Tracer) -> float:
    return [r for r in tr.records if r.name == "b"][0].start_ms


# ----------------------------------------------------------------------
# Trace queries
# ----------------------------------------------------------------------


class TestTrace:
    def test_filter_and_order(self):
        trace = golden_tracer().trace()
        assert len(trace) == 5
        assert [r.name for r in trace.spans("compute")] == \
            ["transform", "vertex_kernel"]
        assert trace.roots()[0].name == "query"
        kids = trace.children_of(trace.roots()[0].sid)
        assert [r.name for r in kids] == ["iteration"]

    def test_categories_in_track_order_then_alphabetical(self):
        tr = Tracer()
        tr.emit("x", "zebra", 1.0)
        tr.emit("y", "migration", 1.0)
        tr.emit("z", "engine", 1.0)
        assert tr.trace().categories() == ["engine", "migration", "zebra"]
        assert set(CATEGORIES) >= {"engine", "migration"}

    def test_busy_ms_is_a_union_not_a_sum(self):
        tr = Tracer()
        tr.emit("a", "compute", 2.0, t_ms=0.0)
        tr.emit("b", "compute", 2.0, t_ms=1.0)  # overlaps a
        assert tr.trace().busy_ms("compute") == pytest.approx(3.0)

    def test_span_ms(self):
        assert golden_tracer().trace().span_ms == pytest.approx(1.0)
        assert Tracer().trace().span_ms == 0.0


# ----------------------------------------------------------------------
# Exporters: golden files, validation, round-trips
# ----------------------------------------------------------------------

GOLDEN_CHROME = (
    '{"displayTimeUnit":"ms","otherData":{"graph":"6v-12e","problem":"bfs"},'
    '"traceEvents":[{"args":{"name":"repro simulated GPU"},'
    '"cat":"__metadata","name":"process_name","ph":"M","pid":0,"tid":0},'
    '{"args":{"name":"engine"},"cat":"__metadata","name":"thread_name",'
    '"ph":"M","pid":0,"tid":0},{"args":{"sort_index":0},"cat":"__metadata",'
    '"name":"thread_sort_index","ph":"M","pid":0,"tid":0},'
    '{"args":{"name":"compute"},"cat":"__metadata","name":"thread_name",'
    '"ph":"M","pid":0,"tid":1},{"args":{"sort_index":1},"cat":"__metadata",'
    '"name":"thread_sort_index","ph":"M","pid":0,"tid":1},'
    '{"args":{"name":"migration"},"cat":"__metadata","name":"thread_name",'
    '"ph":"M","pid":0,"tid":3},{"args":{"sort_index":3},"cat":"__metadata",'
    '"name":"thread_sort_index","ph":"M","pid":0,"tid":3},'
    '{"args":{"iterations":1,"problem":"bfs","sid":0},"cat":"engine",'
    '"dur":1000.0,"name":"query","ph":"X","pid":0,"tid":0,"ts":0.0},'
    '{"args":{"index":0,"parent":0,"sid":1},"cat":"engine","dur":750.0,'
    '"name":"iteration","ph":"X","pid":0,"tid":0,"ts":0.0},'
    '{"args":{"parent":1,"sid":2,"threads":64},"cat":"compute","dur":250.0,'
    '"name":"transform","ph":"X","pid":0,"tid":1,"ts":0.0},'
    '{"args":{"parent":1,"sid":3},"cat":"compute","dur":500.0,'
    '"name":"vertex_kernel","ph":"X","pid":0,"tid":1,"ts":250.0},'
    '{"args":{"nbytes":4096.0,"parent":1,"sid":4},"cat":"migration",'
    '"dur":125.0,"name":"um.touch","ph":"X","pid":0,"tid":3,"ts":250.0}]}'
)

GOLDEN_JSONL = "\n".join([
    '{"graph":"6v-12e","problem":"bfs","type":"meta"}',
    '{"attrs":{"iterations":1,"problem":"bfs"},"category":"engine",'
    '"end_ms":1.0,"name":"query","parent":null,"sid":0,"start_ms":0.0,'
    '"type":"span"}',
    '{"attrs":{"index":0},"category":"engine","end_ms":0.75,'
    '"name":"iteration","parent":0,"sid":1,"start_ms":0.0,"type":"span"}',
    '{"attrs":{"threads":64},"category":"compute","end_ms":0.25,'
    '"name":"transform","parent":1,"sid":2,"start_ms":0.0,"type":"span"}',
    '{"attrs":{},"category":"compute","end_ms":0.75,'
    '"name":"vertex_kernel","parent":1,"sid":3,"start_ms":0.25,'
    '"type":"span"}',
    '{"attrs":{"nbytes":4096.0},"category":"migration","end_ms":0.375,'
    '"name":"um.touch","parent":1,"sid":4,"start_ms":0.25,"type":"span"}',
]) + "\n"


def golden_trace():
    return golden_tracer().trace(problem="bfs", graph="6v-12e")


class TestExporters:
    def test_chrome_golden_bytes(self):
        assert dumps_stable(to_chrome_trace(golden_trace())) == GOLDEN_CHROME

    def test_jsonl_golden_bytes(self):
        assert to_jsonl(golden_trace()) == GOLDEN_JSONL

    def test_golden_trace_validates(self):
        assert validate_chrome_trace(to_chrome_trace(golden_trace())) == []

    def test_tracks_skip_absent_categories_but_keep_fixed_ids(self):
        obj = to_chrome_trace(golden_trace())
        tids = {
            ev["args"]["name"]: ev["tid"]
            for ev in obj["traceEvents"] if ev.get("name") == "thread_name"
        }
        # No transfer/resilience spans -> no such tracks, but migration
        # keeps its fixed id 3 so traces stay comparable across queries.
        assert tids == {"engine": 0, "compute": 1, "migration": 3}

    def test_chrome_round_trip(self, tmp_path):
        path = tmp_path / "t.json"
        golden_trace().save_chrome(path)
        back = load_trace(path)
        assert back.meta == {"graph": "6v-12e", "problem": "bfs"}
        orig = golden_trace()
        assert [(r.name, r.sid, r.parent) for r in back.spans()] == \
            [(r.name, r.sid, r.parent) for r in orig.spans()]
        for a, b in zip(back.spans(), orig.spans()):
            assert a.start_ms == pytest.approx(b.start_ms, abs=1e-6)
            assert a.end_ms == pytest.approx(b.end_ms, abs=1e-6)

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        golden_trace().save_jsonl(path)
        back = load_trace(path)
        assert back.meta == {"graph": "6v-12e", "problem": "bfs"}
        assert [r.attrs for r in back.spans()] == \
            [r.attrs for r in golden_trace().spans()]

    def test_validate_rejects_malformed(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) == ["missing or non-list 'traceEvents'"]
        bad_event = {"name": "x", "cat": "engine", "ph": "X",
                     "ts": -1.0, "dur": 2.0, "pid": 0, "tid": 0}
        problems = validate_chrome_trace({"traceEvents": [bad_event]})
        assert any("negative ts" in p for p in problems)
        missing = {k: v for k, v in bad_event.items() if k != "dur"}
        problems = validate_chrome_trace({"traceEvents": [missing]})
        assert any("missing 'dur'" in p for p in problems)

    def test_timeline_exports_through_same_builder(self):
        tl = Timeline()
        tl.add("compute", 0.0, 2.0, label="kernel-0")
        tl.add("transfer", 1.0, 3.0, nbytes=4096, label="h2d")
        events = tl.to_trace_events()
        assert [ev["name"] for ev in events] == ["kernel-0", "h2d"]
        assert all(ev["ph"] == "X" for ev in events)
        assert events[1]["args"]["nbytes"] == 4096.0
        assert validate_chrome_trace({"traceEvents": events}) == []
        # Same interval arithmetic on both sides of the shared helper.
        assert tl.overlap_ms() == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_series_key_sorts_labels(self):
        assert series_key("m", {}) == "m"
        assert series_key("m", {"b": 1, "a": "x"}) == "m{a=x,b=1}"

    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("kernel.launches", 2, problem="bfs")
        reg.inc("kernel.launches", 3, problem="bfs")
        reg.set_gauge("memo.hits", 4)
        reg.set_gauge("memo.hits", 7)  # last write wins
        reg.observe("um.migration_bytes", 2048.0)
        reg.observe("um.migration_bytes", 65536.0)
        snap = reg.snapshot()
        assert snap["counters"]["kernel.launches{problem=bfs}"] == 5
        assert snap["gauges"]["memo.hits"] == 7.0
        hist = snap["histograms"]["um.migration_bytes"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(67584.0)
        assert hist["min"] == 2048.0 and hist["max"] == 65536.0
        assert hist["buckets"] == {"<=1e+04": 1, "<=1e+05": 1}
        assert snap["dropped_series"] == 0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.inc("m")
        with pytest.raises(ValueError, match="counter"):
            reg.set_gauge("m", 1.0)

    def test_cardinality_bound_folds_into_overflow(self):
        reg = MetricsRegistry(max_series=3)
        for v in range(10):
            reg.inc("m", 1, vertex=v)
        snap = reg.snapshot()
        series = snap["counters"]
        assert len(series) == 4  # 3 real + the overflow fold
        assert series["m{overflow=true}"] == 7
        assert snap["dropped_series"] == 7

    def test_merge_adds_counters_and_combines_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 1)
        b.inc("n", 2)
        a.observe("h", 1.0)
        b.observe("h", 9.0)
        b.set_gauge("g", 5.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["n"] == 3
        assert snap["gauges"]["g"] == 5.0
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["max"] == 9.0

    def test_snapshot_is_deterministic_json(self):
        def build():
            reg = MetricsRegistry()
            reg.inc("b.metric", 1, z="1", a="2")
            reg.inc("a.metric", 1)
            reg.observe("h", 3.0)
            return json.dumps(reg.snapshot(), sort_keys=True)

        assert build() == build()


class TestMetricWrappers:
    def test_zero_work_counters_lift_to_zero_ratios(self):
        reg = MetricsRegistry()
        add_kernel_counters(reg, KernelCounters(), problem="bfs")
        snap = reg.snapshot()
        assert snap["counters"]["kernel.launches{problem=bfs}"] == 0.0
        for ratio in ("ipc", "unified_hit_rate", "l2_hit_rate",
                      "dram_read_throughput_gbps"):
            assert snap["gauges"][f"kernel.{ratio}{{problem=bfs}}"] == 0.0

    def test_error_taxonomy_labels_outcomes(self):
        reg = MetricsRegistry()
        add_error_taxonomy(
            reg, {"ok": 3, "oom": 1, "errors": {"TransferError": 2}}
        )
        snap = reg.snapshot()["counters"]
        assert snap["bench.cells{outcome=ok}"] == 3
        assert snap["bench.cells{outcome=oom}"] == 1
        assert snap["bench.cells{outcome=error,type=TransferError}"] == 2

    def test_unified_snapshot_over_live_session(self, skewed_graph):
        with EngineSession(skewed_graph, EtaGraphConfig()) as session:
            result = session.query("bfs", 0)
            snap = unified_snapshot(
                session=session, profiler=result.profiler
            )
        assert snap["gauges"]["session.queries_served"] == 1
        assert snap["counters"]["kernel.launches"] > 0
        assert snap["counters"]["transfer.h2d_bytes"] > 0
        assert "memo.hits" in snap["gauges"]


# ----------------------------------------------------------------------
# Profiler edge cases (the KernelCounters satellite)
# ----------------------------------------------------------------------


class TestProfilerEdgeCases:
    def test_empty_counters_derive_zero_not_nan(self):
        counters = KernelCounters()
        for name, value in counters.derived_dict().items():
            assert value == 0.0, name
            assert math.isfinite(value), name

    def test_zero_duration_kernel_throughputs_are_zero(self):
        counters = KernelCounters(dram_read_bytes=1e9, elapsed_ms=0.0)
        assert counters.dram_read_throughput_gbps == 0.0

    def test_merge_skips_non_finite_contributions(self):
        acc = KernelCounters(instructions=100.0, cycles=50.0)
        acc.merge(KernelCounters(instructions=float("nan"),
                                 cycles=float("inf"), elapsed_ms=1.0))
        assert acc.instructions == 100.0
        assert acc.cycles == 50.0
        assert acc.elapsed_ms == 1.0  # finite fields still accumulate
        assert math.isfinite(acc.ipc)

    def test_structured_views_cover_fields_and_ratios(self):
        counters = KernelCounters(launches=2, instructions=10.0, cycles=5.0)
        as_dict = counters.as_dict()
        assert as_dict["launches"] == 2
        assert set(as_dict) == set(KernelCounters.__dataclass_fields__)
        assert counters.derived_dict()["ipc"] == pytest.approx(2.0)

    def test_profiler_snapshot_survives_nan_sample(self):
        prof = Profiler()
        prof.record_kernel(KernelCounters(instructions=float("nan")))
        assert prof.snapshot().instructions == 0.0


# ----------------------------------------------------------------------
# Engine wiring: the bit-identity contract
# ----------------------------------------------------------------------


class TestTelemetryIdentity:
    @pytest.mark.parametrize(
        "mode", [MemoryMode.DEVICE, MemoryMode.UM_PREFETCH]
    )
    def test_off_and_on_runs_are_bit_identical(self, skewed_graph, mode):
        off_cfg = EtaGraphConfig(memory_mode=mode)
        on_cfg = EtaGraphConfig(memory_mode=mode, telemetry=True)
        with EngineSession(skewed_graph, off_cfg) as off, \
                EngineSession(skewed_graph, on_cfg) as on:
            for source in (0, 5):
                r_off = off.query("bfs", source)
                r_on = on.query("bfs", source)
                assert r_off.trace is None
                assert r_on.trace is not None and len(r_on.trace) > 0
                assert result_digest(r_off) == result_digest(r_on)
                assert np.array_equal(r_off.labels, r_on.labels)

    def test_trace_structure_of_one_query(self, skewed_graph):
        with EngineSession(
            skewed_graph, EtaGraphConfig(telemetry=True)
        ) as session:
            trace = session.query("bfs", 0).trace
        roots = trace.roots()
        assert [r.name for r in roots] == ["query"]
        assert roots[0].attrs["problem"] == "bfs"
        assert roots[0].attrs["iterations"] >= 1
        iterations = trace.spans("engine", "iteration")
        assert len(iterations) == roots[0].attrs["iterations"]
        assert all(r.parent == roots[0].sid for r in iterations)
        # Every iteration is inside the query span on the same clock.
        for it in iterations:
            assert roots[0].start_ms <= it.start_ms
            assert it.end_ms <= roots[0].end_ms + 1e-9
        assert trace.spans("compute", "vertex_kernel")
        assert trace.spans("transfer")  # labels-init / labels-d2h
        assert validate_chrome_trace(trace.to_chrome_trace()) == []

    def test_attached_tracer_wins_and_records(self, skewed_graph):
        tracer = Tracer()
        with EngineSession(skewed_graph, EtaGraphConfig()) as session:
            session.tracer = tracer
            result = session.query("bfs", 0)
        assert result.trace is not None
        assert result.trace.records is not tracer.records  # snapshot copy
        assert len(tracer.records) == len(result.trace)

    def test_untraced_session_has_no_tracer(self, skewed_graph):
        with EngineSession(skewed_graph, EtaGraphConfig()) as session:
            session.query("bfs", 0)
            assert session.tracer is None


# ----------------------------------------------------------------------
# Resilience wiring: stitched serving timelines
# ----------------------------------------------------------------------


class TestResilienceTracing:
    def test_nominal_run_records_serve_and_attempt(self, skewed_graph):
        with ResilientSession(
            skewed_graph, EtaGraphConfig(telemetry=True)
        ) as rs:
            outcome = rs.run("bfs", 0)
        trace = outcome.trace
        assert trace is not None
        serve = trace.spans("resilience", "serve")
        attempts = trace.spans("resilience", "attempt")
        assert len(serve) == 1 and len(attempts) == 1
        assert serve[0].attrs["attempts"] == 1
        assert attempts[0].parent == serve[0].sid
        # The engine's spans are inside the attempt window.
        q = trace.spans("engine", "query")[0]
        assert attempts[0].start_ms <= q.start_ms
        assert q.end_ms <= attempts[0].end_ms + 1e-9

    def test_retry_stitches_attempts_after_backoff(self, skewed_graph):
        with ResilientSession(
            skewed_graph, EtaGraphConfig(telemetry=True),
            fault_plan=FaultPlan(
                specs=(FaultSpec("transfer_fault", at=0),), seed=7,
            ),
            policy=RetryPolicy(max_retries=2, backoff_base_ms=1.5),
        ) as rs:
            outcome = rs.run("bfs", 0)
        assert outcome.num_attempts == 2
        trace = outcome.trace
        attempts = trace.spans("resilience", "attempt")
        backoffs = trace.spans("resilience", "backoff")
        assert len(attempts) == 2 and len(backoffs) == 1
        first, second = attempts
        assert first.attrs["error"] == "TransferError"
        assert backoffs[0].start_ms >= first.end_ms - 1e-9
        assert second.start_ms >= backoffs[0].end_ms - 1e-9
        # The failed attempt keeps its partial engine spans (aborted).
        aborted = [r for r in trace.records if r.attrs.get("aborted")]
        assert aborted
        assert validate_chrome_trace(trace.to_chrome_trace()) == []

    def test_no_fault_bit_identity_including_traced_leg(self, skewed_graph):
        assert check_bit_identity(skewed_graph, ("bfs",), (0, 5)) == []


# ----------------------------------------------------------------------
# Harness wiring: bench --trace-dir
# ----------------------------------------------------------------------


class TestBenchTraceDir:
    def test_run_cell_records_trace_path(self, tmp_path):
        from repro.bench.runner import BenchContext, run_cell

        traced_ctx = BenchContext(trace_dir=tmp_path)
        cell = run_cell(traced_ctx, "etagraph", "bfs", "slashdot")
        assert not cell.oom and cell.error is None
        path = cell.extras["trace_path"]
        obj = json.loads(open(path).read())
        assert validate_chrome_trace(obj) == []
        assert obj["otherData"]["framework"] == "etagraph"
        # Tracing must not move the simulated numbers.
        plain = run_cell(BenchContext(), "etagraph", "bfs", "slashdot")
        assert cell.total_ms == plain.total_ms
        assert cell.kernel_ms == plain.kernel_ms
        assert "trace_path" not in plain.extras


# ----------------------------------------------------------------------
# Summarize + CLI
# ----------------------------------------------------------------------


class TestSummarize:
    def test_render_summary_sections(self):
        text = render_summary(golden_trace(), top=3)
        assert "5 spans over 1.000 ms" in text
        assert "graph=6v-12e" in text
        assert "Tracks" in text and "flame summary" in text
        assert "engine/query" in text
        assert "compute/vertex_kernel" in text

    def test_cli_summarize_and_validate(self, tmp_path, capsys):
        from repro.observability.__main__ import main

        path = tmp_path / "t.json"
        golden_trace().save_chrome(path)
        assert main(["validate", str(path)]) == 0
        assert main(["summarize", str(path), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "valid Chrome trace" in out
        assert "Top 2 hot spans" in out

    def test_cli_validate_flags_bad_file(self, tmp_path, capsys):
        from repro.observability.__main__ import main

        path = tmp_path / "bad.json"
        path.write_text('{"traceEvents": [{"ph": "X", "name": "x"}]}')
        assert main(["validate", str(path)]) == 1

    def test_cli_no_command_prints_usage(self, capsys):
        from repro.observability.__main__ import main

        assert main([]) == 2
        assert "Usage" in capsys.readouterr().out
