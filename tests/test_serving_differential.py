"""Service-vs-session differential battery: the frontend must never
change an answer.

Every endpoint's result has to be bit-identical — labels *and*
simulated clock readings — to what the underlying layer produces when
driven directly.  Warm-query timing depends on each session's full
history, so multi-lane comparisons replay each lane's exact served
subsequence on a fresh bare session (see ``repro.serving.identity``).
"""

import numpy as np
import pytest

from repro.core.config import EtaGraphConfig, MemoryMode
from repro.core.session import EngineSession
from repro.resilience import FaultPlan, ResilientSession
from repro.resilience.chaos import result_digest
from repro.serving import (
    NeighborhoodRequest,
    PageRankRequest,
    ShortestPathRequest,
    StatsRequest,
    TraversalService,
    VisitRequest,
    check_service_identity,
)
from repro.serving.identity import replay_mismatches
from repro.testing.differential import (
    oracle_labels,
    run_differential_case,
    service_engine,
)

QUERIES = (
    ("bfs", 0), ("bfs", 3), ("cc", 0), ("bfs", 0), ("cc", 1), ("bfs", 2),
)


class TestVisitIdentity:
    def test_single_lane_stream_is_bit_identical(self, skewed_graph):
        # pool_size=1 serves the stream in order on one session: the
        # reference is the same stream on one bare session.
        with TraversalService(skewed_graph, pool_size=1) as service:
            responses = service.serve([
                VisitRequest(problem=p, source=s) for p, s in QUERIES
            ])
        with EngineSession(skewed_graph) as session:
            for response, (problem, source) in zip(responses, QUERIES):
                want = result_digest(session.query(problem, source))
                assert result_digest(response.result) == want

    def test_two_lane_stream_replays_per_lane(self, skewed_graph):
        with TraversalService(skewed_graph, pool_size=2) as service:
            responses = service.serve([
                VisitRequest(problem=p, source=s) for p, s in QUERIES
            ])
        assert {r.worker for r in responses} == {0, 1}
        assert replay_mismatches(skewed_graph, responses) == []

    def test_check_service_identity_gate(self, skewed_graph):
        for pool_size in (1, 2):
            assert check_service_identity(
                skewed_graph, pool_size=pool_size,
            ) == []

    @pytest.mark.parametrize("mode", [
        MemoryMode.DEVICE, MemoryMode.UM_ON_DEMAND, MemoryMode.ZERO_COPY,
    ])
    def test_identity_across_memory_modes(self, skewed_graph, mode):
        config = EtaGraphConfig(memory_mode=mode)
        assert check_service_identity(
            skewed_graph, config=config, pool_size=2,
        ) == []

    def test_early_exit_target_identity(self, skewed_graph):
        with TraversalService(skewed_graph, pool_size=1) as service:
            response = service.call(
                VisitRequest(problem="bfs", source=0, target=7)
            )
        with EngineSession(skewed_graph) as session:
            want = result_digest(session.query("bfs", 0, target=7))
        assert result_digest(response.result) == want


class TestOtherEndpoints:
    def test_neighborhood_rides_the_same_bfs(self, skewed_graph):
        with TraversalService(skewed_graph, pool_size=1) as service:
            response = service.call(NeighborhoodRequest(source=0, hops=2))
        with EngineSession(skewed_graph) as session:
            want = result_digest(session.query("bfs", 0))
        assert result_digest(response.result) == want

    def test_shortest_path_matches_api_helper(self, skewed_graph):
        from repro.core.api import EtaGraph

        with TraversalService(skewed_graph) as service:
            response = service.call(ShortestPathRequest(source=0, target=9))
        assert response.ok
        want = EtaGraph(skewed_graph).shortest_hop_path(0, 9)
        assert response.value == want

    def test_pagerank_matches_direct_call(self, tiny_graph):
        from repro.core.pagerank import delta_pagerank

        with TraversalService(tiny_graph) as service:
            response = service.call(PageRankRequest())
        direct = delta_pagerank(tiny_graph)
        np.testing.assert_array_equal(response.value, direct.ranks)
        assert response.result.total_ms == direct.total_ms
        assert response.service_ms == direct.total_ms

    def test_stats_matches_graph_summary(self, tiny_graph):
        from dataclasses import asdict

        from repro.graph.properties import GraphSummary

        with TraversalService(tiny_graph) as service:
            response = service.call(StatsRequest())
        assert response.value == asdict(GraphSummary.of(tiny_graph))


class TestResilientWorkers:
    def test_no_fault_resilient_service_is_bit_identical(self, skewed_graph):
        # resilient=True with no plan must add nothing: same digests as
        # a bare session.
        with TraversalService(
            skewed_graph, pool_size=1, resilient=True,
        ) as service:
            responses = service.serve([
                VisitRequest(problem=p, source=s) for p, s in QUERIES
            ])
        with EngineSession(skewed_graph) as session:
            for response, (problem, source) in zip(responses, QUERIES):
                want = result_digest(session.query(problem, source))
                assert result_digest(response.result) == want

    @pytest.mark.parametrize("plan_seed", [1, 7, 23])
    def test_faulted_service_replays_resilient_session(
        self, skewed_graph, plan_seed,
    ):
        # Under a seeded fault plan the service must be bit-identical to
        # a ResilientSession running the same plan over the same stream
        # (fresh injector each, so the deterministic schedule replays).
        plan = FaultPlan.random(plan_seed, max_faults=3)
        with TraversalService(
            skewed_graph, pool_size=1, fault_plan=plan,
        ) as service:
            responses = service.serve([
                VisitRequest(problem=p, source=s) for p, s in QUERIES
            ])
        with ResilientSession(skewed_graph, fault_plan=plan) as reference:
            for response, (problem, source) in zip(responses, QUERIES):
                outcome = reference.run(problem, source)
                assert response.ok, response.error
                if outcome.final_placement == "cpu_oracle":
                    # The oracle rung's total_ms is host wall time (no
                    # simulated clock exists there): labels only.
                    np.testing.assert_array_equal(
                        response.labels, outcome.labels,
                    )
                else:
                    assert result_digest(response.result) == \
                        result_digest(outcome.result)
                assert response.placement == outcome.final_placement
                assert response.degraded == outcome.degraded
                assert response.faults_seen == outcome.faults_seen

    def test_faulted_labels_still_match_the_oracle(self, skewed_graph):
        plan = FaultPlan.random(5, max_faults=4)
        with TraversalService(
            skewed_graph, pool_size=2, fault_plan=plan,
        ) as service:
            responses = service.serve([
                VisitRequest(problem=p, source=s) for p, s in QUERIES
            ])
        for response, (problem, source) in zip(responses, QUERIES):
            assert response.ok, response.error
            np.testing.assert_array_equal(
                response.labels, oracle_labels(skewed_graph, problem, source),
            )


class TestFuzzEngine:
    def test_service_engine_joins_differential_cases(self, skewed_graph):
        report = run_differential_case(
            skewed_graph, "bfs", 0,
            extra_engines={"etagraph-service": service_engine()},
        )
        assert report.ok, report.summary()
        assert "etagraph-service" in [e.engine for e in report.engines]

    def test_run_fuzz_with_service_engine(self):
        from repro.testing.fuzz import run_fuzz

        report = run_fuzz(
            max_cases=4, seed=11, baselines=(),
            engines=("etagraph-service",), metamorphic_every=0,
        )
        assert report.ok, report.summary()

    def test_unknown_engine_name_rejected(self):
        from repro.testing.fuzz import run_fuzz

        with pytest.raises(ValueError):
            run_fuzz(max_cases=1, engines=("no-such-engine",))
