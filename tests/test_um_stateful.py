"""Stateful property test of the Unified Memory manager.

Drives random sequences of touch / prefetch operations against multiple
allocations and checks the manager's invariants after every step —
residency never exceeds the budget (beyond the in-flight burst), counts
stay consistent, and re-touching resident pages never migrates.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.gpu.device import GTX_1080TI
from repro.gpu.memory import DeviceMemory
from repro.gpu.um import UnifiedMemoryManager
from repro.utils.units import KIB


class UMStateMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        # Tight budget (32 pages) against two 64-page allocations so
        # eviction paths are exercised constantly.
        self.spec = GTX_1080TI.with_capacity(128 * KIB)
        self.mem = DeviceMemory(self.spec)
        self.um = UnifiedMemoryManager(self.spec, self.mem)
        self.arrays = []
        for i in range(2):
            arr = self.mem.alloc(
                f"a{i}", np.zeros(64 * 4096, dtype=np.uint8), kind="um"
            )
            self.um.register(arr)
            self.arrays.append(arr)
        self.total_migrated = 0

    @rule(
        which=st.integers(0, 1),
        start=st.integers(0, 60),
        count=st.integers(1, 20),
    )
    def touch_range(self, which, start, count):
        arr = self.arrays[which]
        pages = np.arange(start, min(start + count, 64))
        before_resident = self.um.total_resident_pages
        batch = self.um.touch(arr, pages)
        self.total_migrated += batch.bytes_moved
        # Migrated bytes cover exactly the previously-missing pages.
        assert batch.bytes_moved % self.spec.page_bytes == 0
        assert batch.bytes_moved <= len(pages) * self.spec.page_bytes

    @rule(which=st.integers(0, 1))
    def retouch_is_free(self, which):
        arr = self.arrays[which]
        first = self.um.touch(arr, np.array([0, 1]))
        second = self.um.touch(arr, np.array([0, 1]))
        assert second.bytes_moved == 0
        assert second.time_ms == 0.0
        self.total_migrated += first.bytes_moved

    @rule(which=st.integers(0, 1))
    def prefetch(self, which):
        batch = self.um.prefetch(self.arrays[which])
        self.total_migrated += batch.bytes_moved

    @invariant()
    def residency_within_budget(self):
        if not hasattr(self, "um"):
            return
        # Residency never exceeds the budget: a burst larger than the
        # budget thrashes (its own earliest pages are dropped) instead of
        # overshooting.
        budget = self.um.resident_budget_pages
        assert self.um.total_resident_pages <= budget

    @invariant()
    def resident_count_matches_bitmaps(self):
        if not hasattr(self, "um"):
            return
        actual = sum(
            int(state.resident.sum()) for state in self.um._states.values()
        )
        assert actual == self.um.total_resident_pages


TestUMStateMachine = UMStateMachine.TestCase
TestUMStateMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
