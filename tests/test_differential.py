"""Differential tests: every engine must match the CPU oracle bit-for-bit.

Includes the full configuration matrix — {UDC in-core/out-of-core} x
{SMP on/off} x {UM-prefetch, UM-on-demand, device-copy} — over five
generated graphs per problem, and a meta-test proving the runner catches
an intentionally injected off-by-one.
"""

import numpy as np
import pytest

from repro.algorithms.base import get_problem
from repro.core.engine import EtaGraphEngine
from repro.testing import (
    ALL_BASELINES,
    cc_reference,
    diff_labels,
    oracle_labels,
    run_differential_case,
)


class TestConfigMatrix:
    """EtaGraph x {UDC placements} x {SMP on/off} x {memory modes}
    produces labels identical to the CPU reference on >= 5 graphs per
    problem."""

    @pytest.mark.parametrize("problem", ["bfs", "cc"])
    def test_unweighted_matrix(self, problem, matrix_configs,
                               differential_graphs):
        graphs = differential_graphs(weighted=False)
        assert len(graphs) >= 5
        for gi, graph in enumerate(graphs):
            expected = oracle_labels(graph, problem, source=0)
            for config in matrix_configs:
                result = EtaGraphEngine(graph, config).run(
                    get_problem(problem), 0
                )
                diff = diff_labels(expected, result.labels, graph)
                assert diff is None, (
                    f"graph {gi}, config {config}: {diff}"
                )

    @pytest.mark.parametrize("problem", ["sssp", "sswp"])
    def test_weighted_matrix(self, problem, matrix_configs,
                             differential_graphs):
        graphs = differential_graphs(weighted=True)
        assert len(graphs) >= 5
        for gi, graph in enumerate(graphs):
            expected = oracle_labels(graph, problem, source=0)
            for config in matrix_configs:
                result = EtaGraphEngine(graph, config).run(
                    get_problem(problem), 0
                )
                diff = diff_labels(expected, result.labels, graph)
                assert diff is None, (
                    f"graph {gi}, config {config}: {diff}"
                )

    def test_matrix_covers_all_axes(self, matrix_configs):
        from repro.core.config import MemoryMode

        assert len(matrix_configs) == 12
        assert {c.udc_mode for c in matrix_configs} == \
            {"in_core", "out_of_core"}
        assert {c.smp for c in matrix_configs} == {True, False}
        assert {c.memory_mode for c in matrix_configs} == {
            MemoryMode.UM_PREFETCH, MemoryMode.UM_ON_DEMAND,
            MemoryMode.DEVICE,
        }


class TestAllEnginesAgree:
    @pytest.mark.parametrize("problem", ["bfs", "sssp", "sswp", "cc"])
    def test_baselines_match_oracle(self, problem, differential_graphs,
                                    differential_runner):
        weighted = problem in ("sssp", "sswp")
        for graph in differential_graphs(weighted=weighted):
            report = differential_runner(graph, problem, source=0)
            assert report.ok, report.summary()
            # etagraph (cold + warm session) + six baselines all reported.
            assert len(report.engines) == 2 + len(ALL_BASELINES)

    def test_isolated_source(self, differential_runner):
        """A source with no out-edges converges immediately everywhere."""
        from repro.graph.builder import build_csr_from_edges

        g = build_csr_from_edges(
            np.array([1, 2]), np.array([2, 3]), num_vertices=5
        )
        report = differential_runner(g, "bfs", source=0)
        assert report.ok, report.summary()

    def test_single_vertex_graph(self, differential_runner):
        from repro.graph.builder import build_csr_from_edges

        g = build_csr_from_edges(
            np.empty(0, np.int64), np.empty(0, np.int64), num_vertices=1
        )
        for problem in ("bfs", "cc"):
            report = differential_runner(g, problem, source=0)
            assert report.ok, report.summary()


class TestInjectedBug:
    """The acceptance criterion: an intentionally injected off-by-one in
    a baseline must be caught by the differential runner."""

    def test_off_by_one_is_caught(self, skewed_graph, differential_runner):
        def broken_engine(csr, problem_name, source):
            labels = oracle_labels(csr, problem_name, source).copy()
            reached = np.isfinite(labels)
            reached[source] = False
            victims = np.flatnonzero(reached)
            labels[victims[0]] += 1.0  # the off-by-one
            return labels

        report = differential_runner(
            skewed_graph, "bfs", source=0,
            baselines=(), extra_engines={"broken": broken_engine},
        )
        assert not report.ok
        [failure] = [e for e in report.engines if not e.ok]
        assert failure.engine == "broken"
        assert failure.diff is not None
        assert failure.diff.num_mismatches == 1
        # First-divergence context names the vertex and both labels.
        text = str(failure.diff)
        v, exp, act = failure.diff.examples[0]
        assert act == exp + 1.0
        assert str(v) in text
        assert "expected" in text
        # ... and the healthy engines still pass in the same report.
        ok = {e.engine for e in report.engines if e.ok}
        assert ok == {"etagraph", "etagraph-session"}

    def test_crashing_engine_is_reported_not_raised(
        self, skewed_graph, differential_runner
    ):
        def crashing_engine(csr, problem_name, source):
            raise RuntimeError("kernel launch failed")

        report = differential_runner(
            skewed_graph, "bfs", source=0,
            baselines=(), extra_engines={"crashy": crashing_engine},
        )
        assert not report.ok
        [failure] = [e for e in report.engines if not e.ok]
        assert failure.error is not None
        assert "kernel launch failed" in failure.error
        assert "crashy" in report.summary()


class TestCCOracle:
    def test_cc_reference_matches_scipy(self, skewed_graph):
        """Directed min-flood fixed point agrees with scipy on a
        symmetrized graph (where it equals weakly-connected components)."""
        import scipy.sparse.csgraph as csgraph

        from repro.graph.builder import build_csr_from_edges, symmetrize

        src, dst = symmetrize(
            skewed_graph.edge_sources(), skewed_graph.column_indices
        )
        sym = build_csr_from_edges(
            src, dst, num_vertices=skewed_graph.num_vertices
        )
        ours = cc_reference(sym)
        _, scipy_labels = csgraph.connected_components(
            sym.to_scipy(), directed=False
        )
        # Same partition: our representative is the min member id.
        for comp in np.unique(scipy_labels):
            members = np.flatnonzero(scipy_labels == comp)
            assert np.all(ours[members] == members.min())
