"""Tests for Unified Degree Cut — Definition 3 and Theorems 1/2 as code."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.udc import ShadowVertices, degree_cut, worst_case_shadow_count
from repro.errors import ConfigError
from repro.graph import generators
from repro.utils.ragged import ragged_gather_indices


class TestFig3Example:
    """The paper's Fig. 3: K=4, active = {1, 2, 4}."""

    def test_example(self, tiny_graph):
        shadows = degree_cut(np.array([1, 2, 4]), tiny_graph.row_offsets, 4)
        # Vertex 1 (degree 5) -> two shadows; vertex 2 (degree 0) -> none;
        # vertex 4 (degree 2 <= K) -> itself.
        assert len(shadows) == 3
        assert list(shadows.ids) == [1, 1, 4]
        assert list(shadows.degrees) == [4, 1, 2]

    def test_shadow_slices_cover_vertex1(self, tiny_graph):
        shadows = degree_cut(np.array([1]), tiny_graph.row_offsets, 4)
        lo = tiny_graph.row_offsets[1]
        hi = tiny_graph.row_offsets[2]
        covered = []
        for s, d in zip(shadows.starts, shadows.degrees):
            covered.extend(range(s, s + d))
        assert covered == list(range(lo, hi))


class TestInvariants:
    def test_zero_degree_filtered(self, tiny_graph):
        shadows = degree_cut(np.array([2]), tiny_graph.row_offsets, 4)
        assert len(shadows) == 0

    def test_empty_active_set(self, tiny_graph):
        shadows = degree_cut(np.array([], dtype=np.int64),
                             tiny_graph.row_offsets, 4)
        assert len(shadows) == 0
        assert shadows.total_edges == 0

    def test_k1_gives_one_shadow_per_edge(self, skewed_graph):
        active = np.arange(skewed_graph.num_vertices)
        shadows = degree_cut(active, skewed_graph.row_offsets, 1)
        assert len(shadows) == skewed_graph.num_edges
        assert shadows.degrees.max(initial=0) == 1

    def test_huge_k_gives_one_shadow_per_vertex(self, skewed_graph):
        active = np.arange(skewed_graph.num_vertices)
        shadows = degree_cut(active, skewed_graph.row_offsets, 10**6)
        nonzero = int((skewed_graph.out_degrees() > 0).sum())
        assert len(shadows) == nonzero

    def test_invalid_k_rejected(self, skewed_graph):
        with pytest.raises(ConfigError):
            degree_cut(np.array([0]), skewed_graph.row_offsets, 0)

    def test_validate_against(self, skewed_graph):
        active = np.arange(skewed_graph.num_vertices)
        shadows = degree_cut(active, skewed_graph.row_offsets, 7)
        shadows.validate_against(skewed_graph.row_offsets, 7)

    def test_validate_catches_violation(self, skewed_graph):
        shadows = ShadowVertices(
            ids=np.array([0], dtype=np.int32),
            starts=np.array([0]),
            degrees=np.array([10**6]),
        )
        with pytest.raises(AssertionError):
            shadows.validate_against(skewed_graph.row_offsets, 4)

    @given(k=st.integers(1, 40), seed=st.integers(0, 10))
    @settings(max_examples=30, deadline=None)
    def test_partition_properties(self, k, seed):
        """Definition 3: shadows of each vertex cover its edge set exactly
        once with per-shadow degree <= K (union + disjointness)."""
        g = generators.rmat(7, 900, seed=seed)
        rng = np.random.default_rng(seed)
        active = np.unique(rng.integers(0, g.num_vertices, size=20))
        shadows = degree_cut(active, g.row_offsets, k)
        assert shadows.degrees.max(initial=0) <= k
        assert shadows.degrees.min(initial=1) >= 1
        # Union of slices == union of active adjacencies, no overlap.
        covered = ragged_gather_indices(shadows.starts, shadows.degrees)
        expected = []
        for v in active:
            expected.extend(range(g.row_offsets[v], g.row_offsets[v + 1]))
        assert sorted(covered.tolist()) == expected
        assert len(np.unique(covered)) == len(covered)

    @given(k=st.integers(1, 40))
    @settings(max_examples=20, deadline=None)
    def test_theorem1_edge_preserved(self, k):
        """Theorem 1: every (v, u) edge appears in exactly one shadow of v."""
        g = generators.star_graph(77)
        shadows = degree_cut(np.array([0]), g.row_offsets, k)
        edges = ragged_gather_indices(shadows.starts, shadows.degrees)
        neighbors = g.column_indices[edges]
        assert sorted(neighbors.tolist()) == sorted(g.neighbors(0).tolist())


class TestWorstCaseBound:
    def test_bound_holds(self, skewed_graph):
        g = skewed_graph
        for k in (1, 2, 5, 16):
            shadows = degree_cut(
                np.arange(g.num_vertices), g.row_offsets, k
            )
            assert len(shadows) <= worst_case_shadow_count(
                g.num_vertices, g.num_edges, k
            )

    def test_bound_rejects_bad_k(self):
        with pytest.raises(ConfigError):
            worst_case_shadow_count(10, 100, 0)

    def test_ends(self, tiny_graph):
        shadows = degree_cut(np.array([1]), tiny_graph.row_offsets, 4)
        assert np.array_equal(shadows.ends(), shadows.starts + shadows.degrees)
