"""Direct unit tests for the host<->device copy model (repro/gpu/transfer.py)."""

import pytest

from repro.gpu.device import GTX_1080TI
from repro.gpu.profiler import Profiler
from repro.gpu.transfer import d2h_copy, h2d_copy


class TestH2DCopy:
    def test_pageable_cost_math(self):
        """Pageable copies pay PCIe latency plus bytes at half bandwidth."""
        spec = GTX_1080TI
        prof = Profiler()
        nbytes = 64 * 1024 * 1024
        t = h2d_copy(spec, prof, nbytes)
        expected = spec.pcie_latency_us * 1e-3 + spec.bytes_time_ms(
            nbytes, spec.pcie_bandwidth_gbps * 0.5
        )
        assert t == pytest.approx(expected)

    def test_pinned_cost_math(self):
        """Pinned copies run at full PCIe bandwidth — strictly faster."""
        spec = GTX_1080TI
        prof = Profiler()
        nbytes = 64 * 1024 * 1024
        pinned = h2d_copy(spec, prof, nbytes, pinned=True)
        expected = spec.pcie_latency_us * 1e-3 + spec.bytes_time_ms(
            nbytes, spec.pcie_bandwidth_gbps
        )
        assert pinned == pytest.approx(expected)
        assert pinned < h2d_copy(spec, prof, nbytes)

    def test_zero_bytes_costs_latency_only(self):
        """A zero-byte copy still pays the PCIe round-trip latency."""
        spec = GTX_1080TI
        prof = Profiler()
        t = h2d_copy(spec, prof, 0)
        assert t == pytest.approx(spec.pcie_latency_us * 1e-3)
        assert t > 0
        assert prof.h2d_bytes == 0
        assert prof.h2d_time_ms == pytest.approx(t)

    def test_profiler_accumulates(self):
        prof = Profiler()
        t1 = h2d_copy(GTX_1080TI, prof, 1000)
        t2 = h2d_copy(GTX_1080TI, prof, 2000)
        assert prof.h2d_bytes == 3000
        assert prof.h2d_time_ms == pytest.approx(t1 + t2)
        assert prof.d2h_bytes == 0

    def test_cost_scales_linearly_in_bytes(self):
        spec = GTX_1080TI
        prof = Profiler()
        base = h2d_copy(spec, prof, 0)
        small = h2d_copy(spec, prof, 1 << 20) - base
        large = h2d_copy(spec, prof, 4 << 20) - base
        assert large == pytest.approx(4 * small)


class TestD2HCopy:
    def test_symmetric_with_h2d(self):
        """The PCIe model is direction-symmetric at equal size."""
        prof = Profiler()
        assert d2h_copy(GTX_1080TI, prof, 12345) == pytest.approx(
            h2d_copy(GTX_1080TI, prof, 12345)
        )

    def test_records_to_d2h_counters(self):
        prof = Profiler()
        t = d2h_copy(GTX_1080TI, prof, 4096)
        assert prof.d2h_bytes == 4096
        assert prof.d2h_time_ms == pytest.approx(t)
        assert prof.h2d_bytes == 0

    def test_zero_bytes_edge_case(self):
        prof = Profiler()
        t = d2h_copy(GTX_1080TI, prof, 0)
        assert t == pytest.approx(GTX_1080TI.pcie_latency_us * 1e-3)
        assert prof.d2h_bytes == 0
