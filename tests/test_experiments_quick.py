"""Quick-mode smoke tests for every experiment module.

The benchmark suite runs these at full scale with hard shape assertions;
this file guarantees that plain ``pytest tests/`` also exercises each
experiment's code path (structure, keys, rendering) on the small
datasets.
"""

import pytest

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.runner import BenchContext


@pytest.fixture(scope="module")
def ctx():
    return BenchContext()


class TestQuickRuns:
    def test_table2_structure(self, ctx):
        report = ALL_EXPERIMENTS["table2"](quick=True, ctx=ctx)
        assert set(report.data["summaries"]) == {
            "slashdot", "livejournal", "com-orkut",
        }
        assert "Table II" in report.text

    def test_table4_structure(self, ctx):
        report = ALL_EXPERIMENTS["table4"](quick=True, ctx=ctx)
        for ds, row in report.data.items():
            assert row["iterations"] > 0
            assert 0 < row["act_percent"] <= 100

    def test_table5_structure(self, ctx):
        report = ALL_EXPERIMENTS["table5"](quick=True, ctx=ctx)
        # Quick mode keeps the two quick datasets, both UMP settings.
        umps = {k[1] for k in report.data}
        assert umps == {True, False}
        for row in report.data.values():
            assert row["count"] > 0

    def test_fig4_structure(self, ctx):
        report = ALL_EXPERIMENTS["fig4"](quick=True, ctx=ctx)
        for ds, row in report.data.items():
            assert 0 <= row["overlap_fraction"] <= 1
            assert row["transfer_series"]
        assert "activity over time" in report.text  # the ASCII bands

    def test_fig5_structure(self, ctx):
        report = ALL_EXPERIMENTS["fig5"](quick=True, ctx=ctx)
        for row in report.data.values():
            assert row["series"]
            assert 0 <= row["r_squared"] <= 1

    def test_fig6_structure(self, ctx):
        report = ALL_EXPERIMENTS["fig6"](quick=True, ctx=ctx)
        for row in report.data.values():
            assert row["w/o SMP"] is not None and row["w/o SMP"] > 0.8
            assert row["w/o UM"] is not None

    def test_fig2_chart_rendered(self, ctx):
        report = ALL_EXPERIMENTS["fig2"](quick=True, ctx=ctx)
        assert "active vertices per iteration" in report.text
        assert "#" in report.text

    def test_all_experiments_callable(self):
        assert len(ALL_EXPERIMENTS) == 12
        for name, fn in ALL_EXPERIMENTS.items():
            assert callable(fn), name

    def test_multi_structure(self, ctx):
        report = ALL_EXPERIMENTS["multi"](quick=True, ctx=ctx)
        for (ds, variant), row in report.data.items():
            assert row["num_queries"] == 8
            # Measured, not reconstructed: the shared setup IS the first
            # query's topology movement.
            assert row["shared_setup_ms"] == row["first_setup_ms"] > 0
            assert row["amortization_speedup"] >= 1.0
            if variant != "etagraph-noum":
                # UM modes: warm queries re-migrate nothing while the
                # quick datasets fit the residency budget.
                assert row["warm_migrated_bytes"] == 0
        assert "warm session" in report.text
