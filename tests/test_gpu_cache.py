"""Tests for the cache models, including cross-validation of the
reuse-window approximation against the exact LRU oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.cache import CacheHierarchy, ExactLRUCache, ReuseWindowCache
from repro.gpu.device import GTX_1080TI


class TestReuseWindow:
    def test_first_access_misses(self):
        c = ReuseWindowCache(window=10)
        assert not c.access(np.array([5]))[0]

    def test_immediate_reuse_hits(self):
        c = ReuseWindowCache(window=10)
        hits = c.access(np.array([5, 5]))
        assert list(hits) == [False, True]

    def test_reuse_beyond_window_misses(self):
        c = ReuseWindowCache(window=3)
        stream = np.array([1, 2, 3, 4, 1])  # distance 4 > window 3
        hits = c.access(stream)
        assert not hits[-1]

    def test_reuse_within_window_hits(self):
        c = ReuseWindowCache(window=4)
        hits = c.access(np.array([1, 2, 3, 4, 1]))
        assert hits[-1]

    def test_state_persists_across_batches(self):
        c = ReuseWindowCache(window=10)
        c.access(np.array([7]))
        assert c.access(np.array([7]))[0]

    def test_duplicates_within_batch(self):
        c = ReuseWindowCache(window=2)
        hits = c.access(np.array([9, 0, 9, 0, 9]))
        assert list(hits) == [False, False, True, True, True]

    def test_hit_rate_counter(self):
        c = ReuseWindowCache(window=10)
        c.access(np.array([1, 1, 1, 1]))
        assert c.hit_rate == 0.75

    def test_reset(self):
        c = ReuseWindowCache(window=10)
        c.access(np.array([3]))
        c.reset()
        assert not c.access(np.array([3]))[0]
        assert c.accesses == 1

    def test_negative_sector_rejected(self):
        c = ReuseWindowCache(window=4)
        with pytest.raises(ValueError):
            c.access(np.array([-1]))

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ReuseWindowCache(window=0)

    def test_empty_batch(self):
        c = ReuseWindowCache(window=4)
        assert len(c.access(np.empty(0, dtype=np.int64))) == 0

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=300),
           st.integers(1, 50))
    @settings(max_examples=50, deadline=None)
    def test_matches_sequential_reference(self, stream, window):
        """The vectorized batch result must equal element-at-a-time
        processing (the definition of the model)."""
        batch = ReuseWindowCache(window)
        got = batch.access(np.array(stream))
        seq = ReuseWindowCache(window)
        expected = [bool(seq.access(np.array([s]))[0]) for s in stream]
        assert list(got) == expected

    def test_fully_associative_equivalence(self):
        """With distinct-sector streams, reuse distance == stack distance,
        so the window model matches a fully-associative LRU of the same
        line count."""
        rng = np.random.default_rng(0)
        stream = rng.integers(0, 64, size=2000)
        window = 32
        approx = ReuseWindowCache(window)
        # Fully associative LRU: one set, `window` ways.
        exact = ExactLRUCache(window * 32, line_bytes=32, ways=window)
        a = approx.access(stream)
        e = exact.access(stream)
        # Not identical (duplicates shrink true stack distance), but the
        # approximation must track closely on uniform traffic.
        assert abs(a.mean() - e.mean()) < 0.1


class TestExactLRU:
    def test_basic_hit(self):
        c = ExactLRUCache(1024, ways=4)
        c.access(np.array([1]))
        assert c.access(np.array([1]))[0]

    def test_eviction_order(self):
        # One set of 2 ways: fill with stride num_sets to land in set 0.
        c = ExactLRUCache(2 * 32, ways=2)
        assert c.num_sets == 1
        c.access(np.array([0, 1]))
        c.access(np.array([2]))  # evicts 0
        assert not c.access(np.array([0]))[0]
        assert c.access(np.array([2]))[0]

    def test_lru_refresh_on_hit(self):
        c = ExactLRUCache(2 * 32, ways=2)
        c.access(np.array([0, 1, 0]))  # 0 refreshed -> 1 is LRU
        c.access(np.array([2]))  # evicts 1
        assert c.access(np.array([0]))[0]
        assert not c.access(np.array([1]))[0]

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ExactLRUCache(32, ways=8)


class TestHierarchy:
    def test_l1_hit_does_not_reach_l2(self):
        h = CacheHierarchy(GTX_1080TI)
        h.access(np.array([1]))
        r = h.access(np.array([1]))
        assert r.unified_hits == 1
        assert r.l2_accesses == 0
        assert r.dram_transactions == 0

    def test_cold_miss_goes_to_dram(self):
        h = CacheHierarchy(GTX_1080TI)
        r = h.access(np.arange(100) * 10_000)
        assert r.unified_hits == 0
        assert r.l2_accesses == 100
        assert r.dram_transactions == 100
        assert r.dram_bytes == 3200

    def test_l2_larger_than_l1(self):
        h = CacheHierarchy(GTX_1080TI)
        assert h.l2.window > h.unified.window

    def test_reset(self):
        h = CacheHierarchy(GTX_1080TI)
        h.access(np.array([1, 1]))
        h.reset()
        r = h.access(np.array([1]))
        assert r.unified_hits == 0
