"""Tests for the cache models, including cross-validation of the
reuse-window approximation against the exact LRU oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.cache import CacheHierarchy, ExactLRUCache, ReuseWindowCache
from repro.gpu.device import GTX_1080TI


class TestReuseWindow:
    def test_first_access_misses(self):
        c = ReuseWindowCache(window=10)
        assert not c.access(np.array([5]))[0]

    def test_immediate_reuse_hits(self):
        c = ReuseWindowCache(window=10)
        hits = c.access(np.array([5, 5]))
        assert list(hits) == [False, True]

    def test_reuse_beyond_window_misses(self):
        c = ReuseWindowCache(window=3)
        stream = np.array([1, 2, 3, 4, 1])  # distance 4 > window 3
        hits = c.access(stream)
        assert not hits[-1]

    def test_reuse_within_window_hits(self):
        c = ReuseWindowCache(window=4)
        hits = c.access(np.array([1, 2, 3, 4, 1]))
        assert hits[-1]

    def test_state_persists_across_batches(self):
        c = ReuseWindowCache(window=10)
        c.access(np.array([7]))
        assert c.access(np.array([7]))[0]

    def test_duplicates_within_batch(self):
        c = ReuseWindowCache(window=2)
        hits = c.access(np.array([9, 0, 9, 0, 9]))
        assert list(hits) == [False, False, True, True, True]

    def test_hit_rate_counter(self):
        c = ReuseWindowCache(window=10)
        c.access(np.array([1, 1, 1, 1]))
        assert c.hit_rate == 0.75

    def test_reset(self):
        c = ReuseWindowCache(window=10)
        c.access(np.array([3]))
        c.reset()
        assert not c.access(np.array([3]))[0]
        assert c.accesses == 1

    def test_negative_sector_rejected(self):
        c = ReuseWindowCache(window=4)
        with pytest.raises(ValueError):
            c.access(np.array([-1]))

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ReuseWindowCache(window=0)

    def test_empty_batch(self):
        c = ReuseWindowCache(window=4)
        assert len(c.access(np.empty(0, dtype=np.int64))) == 0

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=300),
           st.integers(1, 50))
    @settings(max_examples=50, deadline=None)
    def test_matches_sequential_reference(self, stream, window):
        """The vectorized batch result must equal element-at-a-time
        processing (the definition of the model)."""
        batch = ReuseWindowCache(window)
        got = batch.access(np.array(stream))
        seq = ReuseWindowCache(window)
        expected = [bool(seq.access(np.array([s]))[0]) for s in stream]
        assert list(got) == expected

    def test_fully_associative_equivalence(self):
        """With distinct-sector streams, reuse distance == stack distance,
        so the window model matches a fully-associative LRU of the same
        line count."""
        rng = np.random.default_rng(0)
        stream = rng.integers(0, 64, size=2000)
        window = 32
        approx = ReuseWindowCache(window)
        # Fully associative LRU: one set, `window` ways.
        exact = ExactLRUCache(window * 32, line_bytes=32, ways=window)
        a = approx.access(stream)
        e = exact.access(stream)
        # Not identical (duplicates shrink true stack distance), but the
        # approximation must track closely on uniform traffic.
        assert abs(a.mean() - e.mean()) < 0.1


class TestExactLRU:
    def test_basic_hit(self):
        c = ExactLRUCache(1024, ways=4)
        c.access(np.array([1]))
        assert c.access(np.array([1]))[0]

    def test_eviction_order(self):
        # One set of 2 ways: fill with stride num_sets to land in set 0.
        c = ExactLRUCache(2 * 32, ways=2)
        assert c.num_sets == 1
        c.access(np.array([0, 1]))
        c.access(np.array([2]))  # evicts 0
        assert not c.access(np.array([0]))[0]
        assert c.access(np.array([2]))[0]

    def test_lru_refresh_on_hit(self):
        c = ExactLRUCache(2 * 32, ways=2)
        c.access(np.array([0, 1, 0]))  # 0 refreshed -> 1 is LRU
        c.access(np.array([2]))  # evicts 1
        assert c.access(np.array([0]))[0]
        assert not c.access(np.array([1]))[0]

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ExactLRUCache(32, ways=8)


class TestHierarchy:
    def test_l1_hit_does_not_reach_l2(self):
        h = CacheHierarchy(GTX_1080TI)
        h.access(np.array([1]))
        r = h.access(np.array([1]))
        assert r.unified_hits == 1
        assert r.l2_accesses == 0
        assert r.dram_transactions == 0

    def test_cold_miss_goes_to_dram(self):
        h = CacheHierarchy(GTX_1080TI)
        r = h.access(np.arange(100) * 10_000)
        assert r.unified_hits == 0
        assert r.l2_accesses == 100
        assert r.dram_transactions == 100
        assert r.dram_bytes == 3200

    def test_l2_larger_than_l1(self):
        h = CacheHierarchy(GTX_1080TI)
        assert h.l2.window > h.unified.window

    def test_reset(self):
        h = CacheHierarchy(GTX_1080TI)
        h.access(np.array([1, 1]))
        h.reset()
        r = h.access(np.array([1]))
        assert r.unified_hits == 0


# ----------------------------------------------------------------------
# Adversarial streams: batch-split invariance and agreement with the
# exact LRU oracle (PR 3's fast stable-order path must not change either)
# ----------------------------------------------------------------------

def _duplicate_heavy_stream(rng, n, n_sectors):
    """A stream dominated by repeats: a few hot sectors plus noise."""
    hot = rng.integers(0, max(n_sectors // 16, 1), size=n)
    cold = rng.integers(0, n_sectors, size=n)
    take_hot = rng.random(n) < 0.7
    return np.where(take_hot, hot, cold).astype(np.int64)


class TestBatchSplitInvariance:
    """One access() call vs the same stream cut into arbitrary batches:
    the persistent last-access table must hand reuse across the cut."""

    @pytest.mark.parametrize("seed", range(5))
    def test_split_anywhere_same_hits(self, seed):
        rng = np.random.default_rng(seed)
        stream = _duplicate_heavy_stream(rng, 600, 300)
        whole = ReuseWindowCache(window=64)
        hits_whole = whole.access(stream)
        cuts = sorted(rng.integers(1, len(stream), size=3))
        split = ReuseWindowCache(window=64)
        parts = np.split(stream, cuts)
        hits_split = np.concatenate([split.access(p) for p in parts])
        assert np.array_equal(hits_whole, hits_split)
        assert whole.hits == split.hits

    def test_cross_batch_reuse_straddles_calls(self):
        c = ReuseWindowCache(window=8)
        assert list(c.access(np.array([7, 7, 3]))) == [False, True, False]
        # 3 was last touched one access ago, 7 two accesses ago: both
        # within the window even though the batch boundary intervened.
        assert list(c.access(np.array([3, 7]))) == [True, True]

    @given(st.lists(st.integers(0, 40), min_size=1, max_size=120),
           st.integers(1, 119))
    @settings(max_examples=50, deadline=None)
    def test_property_split_invariance(self, values, cut):
        stream = np.array(values, dtype=np.int64)
        cut = min(cut, len(stream))
        a, b = ReuseWindowCache(16), ReuseWindowCache(16)
        whole = a.access(stream)
        split = np.concatenate([b.access(stream[:cut]),
                                b.access(stream[cut:])])
        assert np.array_equal(whole, split)


class TestReuseWindowVsExactLRU:
    """Reuse distance *in accesses* upper-bounds LRU stack distance, so
    with window == line count every reuse-window hit must also hit in a
    fully-associative exact LRU of the same capacity — including across
    access() boundaries and under heavy duplication."""

    def _agree(self, stream, lines, batches=1):
        rw = ReuseWindowCache(window=lines)
        lru = ExactLRUCache(
            capacity_bytes=lines * 32, line_bytes=32, ways=lines
        )
        rw_hits = []
        lru_hits = []
        for part in np.array_split(stream, batches):
            if len(part) == 0:
                continue
            rw_hits.append(rw.access(part))
            lru_hits.append(lru.access(part))
        rw_hits = np.concatenate(rw_hits)
        lru_hits = np.concatenate(lru_hits)
        # Containment: reuse-window is a conservative LRU.
        assert not np.any(rw_hits & ~lru_hits)
        return rw_hits, lru_hits

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("batches", [1, 7])
    def test_hits_contained_in_exact_lru(self, seed, batches):
        rng = np.random.default_rng(seed)
        stream = _duplicate_heavy_stream(rng, 800, 500)
        self._agree(stream, lines=64, batches=batches)

    def test_exact_agreement_on_distinct_line_streams(self):
        # When every access in the window touches a distinct line the
        # reuse distance equals the stack distance: the models coincide.
        stream = np.concatenate([np.arange(32), np.arange(32)])
        rw_hits, lru_hits = self._agree(stream, lines=64)
        assert np.array_equal(rw_hits, lru_hits)
        assert list(rw_hits[:32]) == [False] * 32
        assert list(rw_hits[32:]) == [True] * 32

    def test_duplicate_heavy_single_sector(self):
        stream = np.zeros(100, dtype=np.int64)
        rw_hits, lru_hits = self._agree(stream, lines=8, batches=5)
        assert np.array_equal(rw_hits, lru_hits)
        assert rw_hits.sum() == 99
