"""Integration tests for the benchmark harness (quick-scale).

These run real experiment modules against the cached surrogates, so they
double as end-to-end integration tests of graph -> engine -> reporting.
"""

import numpy as np
import pytest

from repro.bench.runner import BenchContext, run_cell
from repro.bench import workloads
from repro.bench.experiments import exp_table1, exp_fig7
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def ctx():
    return BenchContext()


class TestRunner:
    def test_run_cell_etagraph(self, ctx):
        cell = run_cell(ctx, "etagraph", "bfs", "livejournal")
        assert not cell.oom
        assert cell.total_ms > 0
        assert cell.iterations > 3
        assert "stats" in cell.extras

    def test_run_cell_baseline(self, ctx):
        cell = run_cell(ctx, "tigr", "bfs", "livejournal")
        assert not cell.oom
        assert cell.kernel_ms < cell.total_ms

    def test_labels_agree_across_engines(self, ctx):
        ours = run_cell(ctx, "etagraph", "sssp", "livejournal",
                        keep_labels=True)
        theirs = run_cell(ctx, "gunrock", "sssp", "livejournal",
                          keep_labels=True)
        assert np.allclose(ours.labels, theirs.labels)

    def test_cell_text_styles(self, ctx):
        cell = run_cell(ctx, "tigr", "bfs", "livejournal")
        assert "/" in cell.cell_text()
        assert "/" not in cell.cell_text(etagraph_style=True)

    def test_unknown_variant_rejected(self, ctx):
        with pytest.raises(ConfigError):
            run_cell(ctx, "etagraph-turbo", "bfs", "livejournal")

    def test_dataset_cache_reused(self, ctx):
        g1, s1 = ctx.load("livejournal", False)
        g2, s2 = ctx.load("livejournal", False)
        assert g1 is g2 and s1 == s2

    def test_workload_helpers(self):
        assert workloads.dataset_names(quick=True) == workloads.QUICK_DATASETS
        assert len(workloads.dataset_names(quick=False)) == 7
        assert "cusha" not in workloads.frameworks_for("sswp")
        assert "cusha" in workloads.frameworks_for("bfs")
        assert workloads.bench_device().memory_capacity == 11 * 2**30 // 256


class TestExperimentsQuick:
    def test_table1_matches_paper(self, ctx):
        report = exp_table1.run(ctx=ctx)
        norm = report.data["normalized"]
        assert norm["G-Shard"] == pytest.approx(1.87, abs=0.05)
        assert norm["Edge List"] == pytest.approx(1.87, abs=0.05)
        assert norm["VST"] == pytest.approx(1.32, abs=0.08)
        assert "Table I" in report.text

    def test_fig7_headline_directions(self, ctx):
        report = exp_fig7.run(ctx=ctx)
        norm = report.data["normalized"]
        assert norm["global_read_transactions"] < 0.8
        assert norm["ipc"] > 1.2
        assert "Fig. 7" in report.text

    def test_experiment_registry_complete(self):
        from repro.bench.experiments import ALL_EXPERIMENTS
        assert set(ALL_EXPERIMENTS) == {
            "table1", "table2", "table3", "table4", "table5",
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "multi",
        }
