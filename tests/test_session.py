"""Tests of topology-resident engine sessions.

The contract under test: a warm session query returns labels
*bit-identical* to a standalone ``run()`` under every configuration,
while its cost accounting reflects only the work that query actually
performed — topology placement is paid once per session, measured, and
attributed to the query that triggered it.
"""

import numpy as np
import pytest

from repro import EngineSession, EtaGraph, EtaGraphConfig, MemoryMode
from repro.core.engine import EtaGraphEngine
from repro.core.multi import BatchResult, pick_sources, run_batch
from repro.errors import InvalidLaunchError
from repro.graph import generators
from repro.graph.weights import attach_weights
from repro.utils.units import KIB


@pytest.fixture(scope="module")
def social():
    g = attach_weights(generators.rmat(10, 15000, seed=91), seed=92)
    return g


# ----------------------------------------------------------------------
# Functional exactness: warm session == standalone, whole config matrix
# ----------------------------------------------------------------------

class TestBitIdenticalLabels:
    @pytest.mark.parametrize("problem", ["bfs", "sssp", "sswp"])
    def test_matrix_session_matches_standalone(
        self, matrix_configs, differential_graphs, problem
    ):
        """Across the 12-config fixture matrix: the labels of a *warm*
        session query (after an unrelated warm-up query) are bit-identical
        to a fresh standalone run."""
        weighted = problem in ("sssp", "sswp")
        graphs = differential_graphs(weighted)[:2]
        for cfg in matrix_configs:
            for g in graphs:
                source = int(np.argmax(g.out_degrees()))
                warm_src = (source + 1) % g.num_vertices
                standalone = EtaGraphEngine(g, cfg).run(problem, source)
                with EngineSession(g, cfg) as session:
                    session.query(problem, warm_src)
                    warm = session.query(problem, source)
                assert np.array_equal(standalone.labels, warm.labels), (
                    f"labels diverge for {problem} on {g!r} with {cfg}"
                )

    def test_many_queries_stay_exact(self, social):
        cfg = EtaGraphConfig(memory_mode=MemoryMode.UM_ON_DEMAND)
        sources = pick_sources(social, 8, seed=7)
        with EngineSession(social, cfg) as session:
            for s in sources:
                warm = session.query("sssp", int(s))
                standalone = EtaGraphEngine(social, cfg).run("sssp", int(s))
                assert np.array_equal(warm.labels, standalone.labels)

    def test_mixed_problems_share_one_session(self, social):
        """bfs warms the session, then a weighted query joins: weights
        are placed late, labels still exact."""
        with EngineSession(social) as session:
            bfs_r = session.query("bfs", 0)
            assert bfs_r.setup_ms > 0.0
            sssp_r = session.query("sssp", 0)
            # The late weights placement is charged to the sssp query.
            assert sssp_r.setup_ms > 0.0
            standalone = EtaGraphEngine(social).run("sssp", 0)
            assert np.array_equal(sssp_r.labels, standalone.labels)


# ----------------------------------------------------------------------
# One-shot compatibility
# ----------------------------------------------------------------------

class TestSessionOfOne:
    @pytest.mark.parametrize(
        "mode", [MemoryMode.UM_PREFETCH, MemoryMode.UM_ON_DEMAND,
                 MemoryMode.DEVICE, MemoryMode.ZERO_COPY]
    )
    def test_run_is_a_fresh_session_query(self, social, mode):
        cfg = EtaGraphConfig(memory_mode=mode)
        via_run = EtaGraphEngine(social, cfg).run("bfs", 0)
        with EngineSession(social, cfg) as session:
            via_session = session.query("bfs", 0)
        assert np.array_equal(via_run.labels, via_session.labels)
        assert via_run.total_ms == via_session.total_ms
        assert via_run.setup_ms == via_session.setup_ms
        assert via_run.kernel_ms == via_session.kernel_ms

    def test_one_shot_pays_setup(self, social):
        result = EtaGraphEngine(social).run("bfs", 0)
        assert result.setup_ms > 0.0
        assert result.query_ms == pytest.approx(
            result.total_ms - result.setup_ms
        )


# ----------------------------------------------------------------------
# Warm-state accounting
# ----------------------------------------------------------------------

class TestWarmAccounting:
    def test_setup_paid_once_prefetch_mode(self, social):
        with EngineSession(social) as session:
            first = session.query("bfs", 0)
            assert first.setup_ms == session.setup_ms > 0.0
            warm = [session.query("bfs", s)
                    for s in (1, 2, 3)]
        for r in warm:
            assert r.setup_ms == 0.0
            assert r.extras["warm_start"]
            # Zero topology re-migration while not oversubscribed: the
            # only transfer left is the per-query labels initialization.
            assert r.profiler.migration_time_ms == 0.0
            assert r.profiler.migration_sizes == []
            assert r.profiler.h2d_bytes == social.num_vertices * 4

    def test_warm_on_demand_same_source_migrates_nothing(self, social):
        cfg = EtaGraphConfig(memory_mode=MemoryMode.UM_ON_DEMAND)
        with EngineSession(social, cfg) as session:
            cold = session.query("bfs", 0)
            warm = session.query("bfs", 0)
        assert sum(cold.profiler.migration_sizes) > 0
        assert sum(warm.profiler.migration_sizes) == 0
        assert warm.transfer_ms < cold.transfer_ms

    def test_warm_device_mode_skips_topology_h2d(self, social):
        cfg = EtaGraphConfig(memory_mode=MemoryMode.DEVICE)
        with EngineSession(social, cfg) as session:
            cold = session.query("bfs", 0)
            warm = session.query("bfs", 1)
        topo_bytes = (social.row_offsets.nbytes
                      + social.column_indices.nbytes)
        labels_bytes = social.num_vertices * 4
        assert cold.profiler.h2d_bytes == topo_bytes + labels_bytes
        assert warm.profiler.h2d_bytes == labels_bytes
        assert session.setup_transfer_bytes == topo_bytes

    def test_prepare_moves_setup_out_of_first_query(self, social):
        with EngineSession(social) as session:
            setup = session.prepare("bfs")
            assert setup > 0.0 and session.warm
            first = session.query("bfs", 0)
        assert first.setup_ms == 0.0
        assert first.profiler.migration_sizes == []

    def test_prepare_is_idempotent(self, social):
        with EngineSession(social) as session:
            a = session.prepare("sssp")
            b = session.prepare("sssp")
        assert a == b

    def test_early_exit_target_in_session(self, social):
        with EngineSession(social) as session:
            session.query("bfs", 0)
            full = session.query("bfs", 0)
            reachable = np.flatnonzero(np.isfinite(full.labels))
            target = int(reachable[-1])
            early = session.query("bfs", 0, target=target)
        assert early.labels[target] == full.labels[target]

    def test_closed_session_rejects_queries(self, social):
        session = EngineSession(social)
        session.close()
        with pytest.raises(InvalidLaunchError):
            session.query("bfs", 0)
        session.close()  # idempotent

    def test_oversubscribed_warm_queries_refault(self):
        """Under oversubscription warm queries legitimately keep moving
        pages — the accounting attributes that movement to each query."""
        g = generators.rmat(9, 6000, seed=17)
        device = __import__(
            "repro.gpu.device", fromlist=["GTX_1080TI"]
        ).GTX_1080TI.with_capacity(16 * KIB)
        with EngineSession(g, EtaGraphConfig(), device) as session:
            first = session.query("bfs", 0)
            warm = session.query("bfs", 0)
        assert first.oversubscribed and warm.oversubscribed
        assert sum(warm.profiler.migration_sizes) > 0
        assert warm.setup_ms == 0.0


# ----------------------------------------------------------------------
# Batch accounting on top of sessions
# ----------------------------------------------------------------------

class TestMeasuredBatch:
    @pytest.mark.parametrize(
        "mode", [MemoryMode.UM_PREFETCH, MemoryMode.UM_ON_DEMAND,
                 MemoryMode.DEVICE]
    )
    def test_shared_setup_is_first_query_topology_movement(
        self, social, mode
    ):
        cfg = EtaGraphConfig(memory_mode=mode)
        sources = pick_sources(social, 8, seed=11)
        batch = run_batch(social, sources, "bfs", config=cfg)
        assert len(batch.results) == 8
        assert batch.shared_setup_ms == batch.results[0].setup_ms > 0.0
        for r in batch.results[1:]:
            assert r.setup_ms == 0.0
            if mode.uses_um:
                assert sum(r.profiler.migration_sizes) == 0

    def test_caller_owned_session_extends_warm(self, social):
        with EngineSession(social) as session:
            a = run_batch(social, [0, 1], "bfs", session=session)
            b = run_batch(social, [2, 3], "bfs", session=session)
            assert not session.closed
        assert a.shared_setup_ms > 0.0
        assert b.shared_setup_ms == 0.0  # fully warm second batch

    def test_session_graph_mismatch_rejected(self, social):
        from repro.errors import ConfigError

        other = generators.path_graph(5)
        with EngineSession(other) as session:
            with pytest.raises(ConfigError):
                run_batch(social, [0], "bfs", session=session)

    def test_speedup_guard_on_zero_total(self):
        empty = BatchResult(results=[], shared_setup_ms=0.0, query_ms=0.0)
        assert empty.amortization_speedup == 1.0
        free_setup = BatchResult(
            results=[], shared_setup_ms=0.0, query_ms=0.0
        )
        free_setup.query_ms = 0.0
        assert np.isfinite(free_setup.amortization_speedup)


# ----------------------------------------------------------------------
# API plumbing
# ----------------------------------------------------------------------

class TestApiPlumbing:
    def test_etagraph_session_handle(self, social):
        eta = EtaGraph(social)
        with eta.session() as session:
            r1 = session.query("bfs", 0)
            r2 = session.query("bfs", 1)
        assert r1.setup_ms > 0.0 and r2.setup_ms == 0.0

    def test_shortest_hop_path_reuses_one_session(self, social):
        from repro.algorithms.paths import verify_path

        eta = EtaGraph(social)
        bfs_labels = eta.bfs(0).labels
        reachable = np.flatnonzero(np.isfinite(bfs_labels))
        t1, t2 = int(reachable[-1]), int(reachable[-2])
        p1 = eta.shortest_hop_path(0, t1)
        p2 = eta.shortest_hop_path(0, t2)
        assert eta._path_session.queries_served == 2
        assert eta._path_session.setup_ms > 0.0
        assert verify_path(social, p1, bfs_labels, "bfs")
        assert verify_path(social, p2, bfs_labels, "bfs")

    def test_differential_hook_exercises_sessions(self):
        from repro.testing.differential import run_differential_case

        g = generators.rmat(6, 400, seed=5)
        report = run_differential_case(g, "bfs", 0, baselines=())
        names = {e.engine for e in report.engines}
        assert "etagraph-session" in names
        assert report.ok, report.summary()
