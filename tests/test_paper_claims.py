"""Fast integration tests pinning the paper's headline claims.

These run on the two quick surrogate datasets (LiveJournal, com-Orkut),
so `pytest tests/` alone — without the benchmark suite — already verifies
the core Table III / Fig. 6 shapes end-to-end.
"""

import numpy as np
import pytest

from repro.bench.runner import BenchContext, run_cell


@pytest.fixture(scope="module")
def ctx():
    return BenchContext()


@pytest.fixture(scope="module")
def lj_cells(ctx):
    """All framework cells for LiveJournal BFS + SSSP."""
    out = {}
    for alg in ("bfs", "sssp"):
        for fw in ("cusha", "gunrock", "tigr", "etagraph", "etagraph-noump"):
            out[(fw, alg)] = run_cell(ctx, fw, alg, "livejournal",
                                      keep_labels=True)
    return out


class TestHeadlineClaims:
    def test_etagraph_beats_all_baseline_totals(self, lj_cells):
        """Abstract: 'significant and consistent speedups over the
        state-of-the-art GPU-based graph processing frameworks'."""
        for alg in ("bfs", "sssp"):
            ours = lj_cells[("etagraph", alg)].total_ms
            for fw in ("cusha", "gunrock", "tigr"):
                assert ours < lj_cells[(fw, alg)].total_ms, (fw, alg)

    def test_all_engines_agree(self, lj_cells):
        for alg in ("bfs", "sssp"):
            ref = lj_cells[("etagraph", alg)].labels
            for fw in ("cusha", "gunrock", "tigr", "etagraph-noump"):
                assert np.allclose(ref, lj_cells[(fw, alg)].labels), (fw, alg)

    def test_ump_helps_on_full_traversals(self, lj_cells):
        """Table III: EtaGraph w/o UMP is slower everywhere except the
        tiny-activation uk-2006 (covered by the full bench)."""
        for alg in ("bfs", "sssp"):
            assert (lj_cells[("etagraph-noump", alg)].total_ms
                    > lj_cells[("etagraph", alg)].total_ms)

    def test_speedup_magnitude_in_paper_band(self, lj_cells):
        """Paper: 1.4-2.5x over the best of the others on LJ-class
        graphs; allow a generous band around it."""
        for alg in ("bfs", "sssp"):
            best_other = min(
                lj_cells[(fw, alg)].total_ms
                for fw in ("cusha", "gunrock", "tigr")
            )
            speedup = best_other / lj_cells[("etagraph", alg)].total_ms
            assert 1.1 < speedup < 5.0, (alg, speedup)

    def test_kernel_efficiency_claim(self, lj_cells):
        """EtaGraph's total is competitive with baselines' kernel-only
        time (Section VI-C highlights cases where it wins outright)."""
        ours = lj_cells[("etagraph", "sssp")].total_ms
        tigr_kernel = lj_cells[("tigr", "sssp")].kernel_ms
        assert ours < 1.5 * tigr_kernel

    def test_sswp_supported_by_tigr_and_etagraph_only(self, ctx):
        """Table III's SSWP rows list only Tigr and EtaGraph."""
        from repro.bench.workloads import frameworks_for
        fws = frameworks_for("sswp")
        assert "cusha" not in fws and "gunrock" not in fws
        assert "tigr" in fws and "etagraph" in fws

    def test_space_claim(self, ctx):
        """Table I in action: EtaGraph's footprint (raw CSR + working
        arrays) undercuts every baseline's on the same graph."""
        from repro.baselines import get_framework
        from repro.core.api import EtaGraph

        csr, src = ctx.load("com-orkut", False)
        result = EtaGraph(csr, device=ctx.device).bfs(src)
        ours = result.um_bytes + result.device_bytes
        for fw in ("cusha", "gunrock", "tigr"):
            theirs = get_framework(fw, ctx.device).run(csr, "bfs", src)
            assert ours < theirs.device_bytes, fw


class TestAdversarialInputs:
    def test_self_loop_graph(self):
        from repro import EtaGraph
        from repro.graph.csr import CSRGraph
        g = CSRGraph.from_edges([0, 0, 1], [0, 1, 1], num_vertices=2)
        r = EtaGraph(g).bfs(0)
        assert list(r.labels) == [0, 1]

    def test_single_vertex_graph(self):
        from repro import EtaGraph
        from repro.graph.csr import CSRGraph
        import numpy as np
        g = CSRGraph(np.array([0, 0], dtype=np.int32),
                     np.empty(0, dtype=np.int32))
        r = EtaGraph(g).bfs(0)
        assert r.labels[0] == 0
        assert r.visited == 1

    def test_two_cycle(self):
        from repro import EtaGraph
        from repro.graph.csr import CSRGraph
        g = CSRGraph.from_edges([0, 1], [1, 0], num_vertices=2)
        r = EtaGraph(g).sswp(0) if g.is_weighted else EtaGraph(g).bfs(0)
        assert list(r.labels) == [0, 1]

    def test_parallel_heavy_duplicates_collapsed(self):
        from repro import EtaGraph
        from repro.graph.csr import CSRGraph
        src = [0] * 500
        dst = [1] * 500
        g = CSRGraph.from_edges(src, dst, num_vertices=2)
        assert g.num_edges == 1
        assert EtaGraph(g).bfs(0).labels[1] == 1
