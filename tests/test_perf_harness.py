"""Tests for the perf harness (repro.perf), the parallel bench runner,
and the wall-clock-aware compare gating."""

import copy
import json

import pytest

from repro.bench.compare import compare_reports, is_wall_metric
from repro.bench.runner import run_experiments
from repro.perf.harness import (
    CANONICAL_GRAPHS,
    PerfSettings,
    main as perf_main,
    run_perf,
)

TINY = PerfSettings(graphs=("livejournal",), sources=2, repeats=2)


@pytest.fixture(scope="module")
def tiny_report():
    return run_perf(settings=TINY)


class TestPerfHarness:
    def test_canonical_graphs_are_three(self):
        assert len(CANONICAL_GRAPHS) == 3

    def test_metrics_present_and_positive(self, tiny_report):
        assert tiny_report.experiment == "perf"
        g = tiny_report.data["livejournal"]
        assert g["queries"] == TINY.sources * TINY.repeats
        for key in ("edges_traced", "kernel_launches", "cache_accesses",
                    "wall_s", "wall_edges_per_sec", "wall_launches_per_sec",
                    "wall_cache_accesses_per_sec", "wall_ms_per_query"):
            assert g[key] > 0, key

    def test_repeats_drive_memo_hits(self, tiny_report):
        g = tiny_report.data["livejournal"]
        # The second replay of the source batch re-runs known frontiers.
        assert g["memo_hits"] > 0

    def test_canonical_aggregate_sums_graphs(self, tiny_report):
        data = tiny_report.data
        assert data["canonical"]["edges_traced"] == \
            data["livejournal"]["edges_traced"]
        assert data["canonical"]["queries"] == data["livejournal"]["queries"]

    def test_wall_keys_follow_naming_convention(self, tiny_report):
        g = tiny_report.data["livejournal"]
        for key in g:
            if key.startswith("wall_"):
                assert is_wall_metric(f"livejournal.{key}")
            else:
                assert not is_wall_metric(f"livejournal.{key}")

    def test_cli_writes_bench_json(self, tmp_path):
        out = tmp_path / "BENCH.json"
        rc = perf_main([
            "--graphs", "livejournal", "--sources", "1", "--repeats", "1",
            "--out", str(out), "--json-dir", str(tmp_path / "dir"),
        ])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "perf"
        assert (tmp_path / "dir" / "perf.json").exists()

    def test_cli_dash_skips_output(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert perf_main([
            "--graphs", "livejournal", "--sources", "1", "--repeats", "1",
            "--out", "-",
        ]) == 0
        assert not list(tmp_path.glob("*.json"))


class TestParallelRunner:
    def test_jobs_match_serial_exactly(self):
        names = ["fig3", "table1"]
        serial = list(run_experiments(names, quick=True, jobs=1))
        parallel = list(run_experiments(names, quick=True, jobs=2))
        assert [r.name for r in serial] == [r.name for r in parallel] == names
        for s, p in zip(serial, parallel):
            assert s.report_dict == p.report_dict
            assert s.text == p.text
            assert json.dumps(s.report_dict, indent=2) == \
                json.dumps(p.report_dict, indent=2)

    def test_more_jobs_than_experiments(self):
        runs = list(run_experiments(["fig3"], quick=True, jobs=8))
        assert len(runs) == 1 and runs[0].name == "fig3"


class TestWallMetricGating:
    BASE = {
        "experiment": "perf",
        "data": {
            "g": {
                "edges_traced": 1000,
                "wall_s": 10.0,
                "wall_edges_per_sec": 100.0,
            },
        },
    }

    def _with(self, **leaves):
        report = copy.deepcopy(self.BASE)
        report["data"]["g"].update(leaves)
        return report

    def test_wall_improvement_never_flags(self):
        after = self._with(wall_s=0.1, wall_edges_per_sec=10_000.0)
        assert compare_reports(self.BASE, after) == []

    def test_throughput_regression_flags(self):
        after = self._with(wall_edges_per_sec=10.0)  # 90% drop
        drifts = compare_reports(self.BASE, after, wall_tolerance=0.75)
        assert [d.path for d in drifts] == ["g.wall_edges_per_sec"]

    def test_time_regression_flags(self):
        after = self._with(wall_s=30.0)  # 3x slower
        drifts = compare_reports(self.BASE, after, wall_tolerance=0.75)
        assert [d.path for d in drifts] == ["g.wall_s"]

    def test_generous_tolerance_absorbs_noise(self):
        after = self._with(wall_s=15.0, wall_edges_per_sec=66.0)
        assert compare_reports(self.BASE, after, wall_tolerance=0.75) == []

    def test_deterministic_leaves_stay_tight(self):
        after = self._with(edges_traced=1100)  # 10% > 5% default
        drifts = compare_reports(self.BASE, after)
        assert [d.path for d in drifts] == ["g.edges_traced"]

    def test_wall_tolerance_knob(self):
        after = self._with(wall_s=15.0)  # +50%
        assert compare_reports(self.BASE, after, wall_tolerance=0.75) == []
        drifts = compare_reports(self.BASE, after, wall_tolerance=0.25)
        assert [d.path for d in drifts] == ["g.wall_s"]
