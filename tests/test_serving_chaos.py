"""Chaos battery for the serving layer: 200+ seeded multi-tenant mixes.

The serving contract under fire is the same one the resilience layer
promises (docs/resilience.md), lifted to the request/response frontend:
every admitted request gets exactly one terminal response, and that
response is either a *correct* result or a typed ``ReproError`` — never
a wrong answer, never a bare traceback, never a request that silently
vanishes.  On top of that the scheduler must not starve best-effort
work, and shedding must be monotone in offered load.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np
import pytest

import repro.errors as errors_mod
from repro.algorithms.paths import PathError, verify_path
from repro.errors import ReproError
from repro.graph.properties import GraphSummary
from repro.resilience import FaultPlan
from repro.serving import (
    NeighborhoodRequest,
    PageRankRequest,
    ShortestPathRequest,
    StatsRequest,
    TenantQuota,
    TraversalService,
    VisitRequest,
)
from repro.serving.loadgen import DEFAULT_MIX, LoadSettings, run_closed_loop
from repro.testing.differential import oracle_labels
from repro.testing.fuzz import random_graph

NUM_MIXES = 200
_TENANTS = ("alpha", "beta", "gamma")


def _typed_error_name(response) -> str:
    """The exception class name recorded on a failed response."""
    assert response.error, f"failed response without an error: {response}"
    return response.error.split(":", 1)[0]


def _assert_typed(response) -> None:
    name = _typed_error_name(response)
    exc_type = getattr(errors_mod, name, None) or \
        (PathError if name == "PathError" else None)
    assert exc_type is not None and issubclass(exc_type, ReproError), \
        f"untyped failure {response.error!r}"


def _random_request(rng: np.random.Generator, graph, tenant: str):
    """One random request, biased toward the traversal endpoints."""
    n = graph.num_vertices
    source = int(rng.integers(n))
    # Deadlines: mostly best-effort, sometimes generous, sometimes so
    # tight the scheduler has to shed.
    roll = rng.random()
    deadline = None if roll < 0.5 else \
        (0.05 if roll < 0.7 else float(rng.uniform(1.0, 8.0)))
    kind = int(rng.integers(10))
    if kind < 5:
        problem = "bfs" if rng.integers(2) else "cc"
        return VisitRequest(problem=problem, source=source, tenant=tenant,
                            deadline_ms=deadline)
    if kind < 7:
        return NeighborhoodRequest(source=source,
                                   hops=int(rng.integers(1, 4)),
                                   tenant=tenant, deadline_ms=deadline)
    if kind == 7:
        return ShortestPathRequest(source=source,
                                   target=int(rng.integers(n)),
                                   tenant=tenant, deadline_ms=deadline)
    if kind == 8:
        return PageRankRequest(tenant=tenant, deadline_ms=deadline)
    return StatsRequest(tenant=tenant, deadline_ms=deadline)


def _check_response(graph, response) -> None:
    """One terminal response is a correct answer or a typed refusal."""
    request = response.request
    if response.shed:
        assert not response.ok
        assert _typed_error_name(response) == "DeadlineExceededError"
        # Shedding spends no simulated worker time.
        assert response.finish_ms == response.start_ms
        return
    if not response.ok:
        _assert_typed(response)
        return
    if isinstance(request, VisitRequest):
        np.testing.assert_array_equal(
            response.labels,
            oracle_labels(graph, request.problem, request.source),
        )
    elif isinstance(request, NeighborhoodRequest):
        levels = oracle_labels(graph, "bfs", request.source)
        want = np.flatnonzero(
            np.isfinite(levels) & (levels <= request.hops)
        )
        np.testing.assert_array_equal(response.value["vertices"], want)
    elif isinstance(request, ShortestPathRequest):
        levels = oracle_labels(graph, "bfs", request.source)
        verify_path(graph, response.value, levels, "bfs")
    elif isinstance(request, PageRankRequest):
        ranks = response.value
        assert ranks.shape == (graph.num_vertices,)
        assert np.all(np.isfinite(ranks)) and np.all(ranks >= 0)
    elif isinstance(request, StatsRequest):
        assert response.value == asdict(GraphSummary.of(graph))


class TestChaosMixes:
    def test_200_seeded_mixes_hold_the_contract(self):
        """NUM_MIXES random (graph, tenants, faults, deadlines) services:
        every batch request gets one terminal response, every response is
        correct-or-typed.  A failure prints its mix seed for replay."""
        failures = []
        for seed in range(NUM_MIXES):
            rng = np.random.default_rng(seed)
            graph = random_graph(rng, weighted=False, max_vertices=48)
            # Half the mixes run bare, half through resilient lanes with
            # a seeded fault plan riding the degradation ladder.
            plan = FaultPlan.random(seed, max_faults=int(rng.integers(1, 4))) \
                if seed % 2 else None
            quotas = {
                t: TenantQuota(max_pending=int(rng.integers(2, 9)))
                for t in _TENANTS
            }
            requests = [
                _random_request(rng, graph, _TENANTS[i % len(_TENANTS)])
                for i in range(int(rng.integers(4, 9)))
            ]
            try:
                with TraversalService(
                    graph, pool_size=int(rng.integers(1, 4)),
                    quotas=quotas, fault_plan=plan,
                ) as service:
                    responses = service.serve(requests)
                assert len(responses) == len(requests), \
                    f"{len(requests)} in, {len(responses)} out"
                for response in responses:
                    _check_response(graph, response)
            except Exception as exc:  # noqa: BLE001 — replay coordinates
                failures.append(f"mix seed {seed}: {type(exc).__name__}: {exc}")
        assert not failures, "\n".join(failures)


class TestNoStarvation:
    def test_every_admitted_request_terminates(self, skewed_graph):
        """Best-effort requests behind a wall of deadlined ones still get
        dispatched: the drain returns one terminal response per admitted
        seq, none pending afterwards."""
        rng = np.random.default_rng(7)
        with TraversalService(
            skewed_graph, pool_size=2,
            quotas={t: TenantQuota(max_pending=32) for t in _TENANTS},
        ) as service:
            admitted = []
            for i in range(30):
                deadline = float(rng.uniform(0.05, 2.0)) \
                    if i % 3 else None
                request = VisitRequest(
                    problem="bfs", source=int(rng.integers(
                        skewed_graph.num_vertices)),
                    tenant=_TENANTS[i % len(_TENANTS)],
                    deadline_ms=deadline,
                )
                admitted.append(service.submit(request))
            responses = service.drain()
            assert len(service.queue) == 0
        assert {r.seq for r in responses} == {a.seq for a in admitted}
        for response in responses:
            # Terminal: an answer, a typed error, or an explicit shed.
            assert response.ok or response.error
        # The best-effort third was not starved by the deadlined work.
        best_effort = [r for r in responses
                       if r.request.deadline_ms is None]
        assert best_effort and all(r.ok for r in best_effort)


class TestMonotoneShedding:
    def test_shed_rate_rises_with_offered_load(self, skewed_graph):
        """The closed-loop sweep's headline invariant: more clients can
        only shed more.  Fresh service per load point, same seed."""
        settings = LoadSettings(
            pool_size=1, requests_per_client=6, seed=0, mix=DEFAULT_MIX,
        )
        quotas = {p.name: p.quota for p in DEFAULT_MIX}
        rates = []
        for clients in (3, 6, 12):
            with TraversalService(
                skewed_graph, pool_size=settings.pool_size, quotas=quotas,
            ) as service:
                responses = run_closed_loop(service, settings, clients)
            assert len(responses) == clients * settings.requests_per_client
            for response in responses:
                assert response.ok or response.error
            shed = sum(1 for r in responses if r.shed)
            rates.append(shed / len(responses))
        assert rates == sorted(rates), \
            f"shed rate not monotone in load: {rates}"
        # Twelve closed-loop clients against one lane must actually shed.
        assert rates[-1] > 0.0
