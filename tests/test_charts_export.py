"""Tests for ASCII chart rendering and JSON report export."""

import json
import math

import numpy as np
import pytest

from repro.bench.export import load_report_dict, report_to_dict, save_report
from repro.bench.runner import BenchContext, ExperimentReport
from repro.utils.charts import bar_chart, sparkline, timeline_chart


class TestBarChart:
    def test_basic_shape(self):
        out = bar_chart([1, 4, 2], labels=["a", "b", "c"], width=8)
        lines = out.splitlines()
        assert len(lines) == 3
        assert lines[1].count("#") == 8  # the max fills the width

    def test_proportionality(self):
        out = bar_chart([2, 4], width=10)
        a, b = out.splitlines()
        assert b.count("#") == 2 * a.count("#")

    def test_zero_values(self):
        out = bar_chart([0, 5], width=10)
        assert out.splitlines()[0].count("#") == 0

    def test_title(self):
        assert bar_chart([1], title="T").splitlines()[0] == "T"

    def test_empty(self):
        assert bar_chart([], title="T") == "T"


class TestSparkline:
    def test_length(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_ramp(self):
        s = sparkline(list(range(9)))
        assert s[0] < s[-1]

    def test_flat_series(self):
        s = sparkline([5, 5, 5])
        assert len(set(s)) == 1

    def test_empty(self):
        assert sparkline([]) == ""


class TestTimelineChart:
    def test_bands_cover_busy_ranges(self):
        out = timeline_chart(
            [("compute", 0, 10), ("transfer", 0, 5)], width=10
        )
        compute_line = next(l for l in out.splitlines() if "compute" in l)
        transfer_line = next(l for l in out.splitlines() if "transfer" in l)
        assert compute_line.count("=") == 10
        assert transfer_line.count("=") == 5

    def test_empty(self):
        assert timeline_chart([], title="T") == "T"

    def test_one_row_per_kind(self):
        out = timeline_chart(
            [("a", 0, 1), ("b", 0, 1), ("a", 2, 3)], width=10
        )
        assert len(out.splitlines()) == 2


class TestExport:
    def _report(self):
        return ExperimentReport(
            experiment="x",
            title="X",
            text="ignored",
            data={
                "array": np.arange(3),
                "scalar": np.float32(1.5),
                "inf": float("inf"),
                ("tuple", "key"): {"nested": [np.int64(7)]},
            },
        )

    def test_roundtrip(self, tmp_path):
        p = tmp_path / "x.json"
        save_report(self._report(), p)
        loaded = load_report_dict(p)
        assert loaded["experiment"] == "x"
        assert loaded["data"]["array"] == [0, 1, 2]
        assert loaded["data"]["scalar"] == 1.5
        assert loaded["data"]["tuple/key"]["nested"] == [7]

    def test_nonfinite_values_survive(self):
        d = report_to_dict(self._report())
        json.dumps(d)  # must not raise
        assert d["data"]["inf"] == "inf" or math.isinf(d["data"]["inf"])

    def test_real_experiment_exports(self, tmp_path):
        from repro.bench.experiments import exp_fig3

        report = exp_fig3.run()
        p = tmp_path / "fig3.json"
        save_report(report, p)
        loaded = load_report_dict(p)
        assert loaded["data"]["ids"] == [1, 1, 4]

    def test_cli_json_dir(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        assert main(["fig3", "--json-dir", str(tmp_path)]) == 0
        assert (tmp_path / "fig3.json").exists()

    def test_dataclass_flattening(self):
        from repro.bench.export import _jsonable
        from repro.core.stats import IterationStats

        out = _jsonable(IterationStats(
            index=0, active_vertices=1, shadow_vertices=1, edges_scanned=2,
            updates=1, newly_visited=1, kernel_ms=0.1, transform_ms=0.0,
            transfer_ms=0.0, elapsed_end_ms=0.1,
        ))
        assert out["active_vertices"] == 1
