"""Tests for CuSha's three processing methods and Gunrock's load-mapping
strategies (the configurations the paper's methodology sweeps)."""

import numpy as np
import pytest

from repro.algorithms import cpu_reference
from repro.baselines.cusha import CuShaFramework, METHODS
from repro.baselines.gunrock import GunrockFramework, MAPPINGS
from repro.errors import ConfigError
from repro.graph import generators
from repro.graph.weights import attach_weights


@pytest.fixture(scope="module")
def social():
    g = attach_weights(generators.rmat(10, 15000, seed=41), seed=42)
    src = int(np.argmax(g.out_degrees()))
    ref = cpu_reference.sssp_distances(g, src)
    return g, src, ref


class TestCuShaMethods:
    @pytest.mark.parametrize("method", METHODS)
    def test_all_methods_correct(self, social, method):
        g, src, ref = social
        r = CuShaFramework(method=method).run(g, "sssp", src)
        assert np.allclose(r.labels, ref)
        assert r.extras["method"] == method

    def test_best_picks_minimum(self, social):
        g, src, ref = social
        times = {
            m: CuShaFramework(method=m).run(g, "sssp", src).total_ms
            for m in METHODS
        }
        best = CuShaFramework(method="best").run(g, "sssp", src)
        assert np.allclose(best.labels, ref)
        assert best.total_ms == pytest.approx(min(times.values()))
        assert "best of 3" in best.extras["method"]

    def test_cw_reduces_writeback_traffic(self):
        """CW's selective refresh writes back only changed slots; on a
        deep graph with small per-level frontiers the saved write traffic
        is large (the kernel may stay compute-bound, so assert on the
        traffic itself and require time not to regress)."""
        g = generators.web_chain(5000, 50_000, depth=25, seed=2)
        gs = CuShaFramework(method="gs").run(g, "bfs", 0)
        cw = CuShaFramework(method="cw").run(g, "bfs", 0)
        assert cw.profiler.kernels.dram_write_bytes < \
            0.5 * gs.profiler.kernels.dram_write_bytes
        assert cw.kernel_ms <= 1.05 * gs.kernel_ms

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigError):
            CuShaFramework(method="quantum")

    def test_methods_share_footprint(self, social):
        """All three stage per-edge values: the O.O.M boundary is common."""
        g, src, _ = social
        sizes = {
            m: CuShaFramework(method=m).run(g, "bfs", src).device_bytes
            for m in METHODS
        }
        lo, hi = min(sizes.values()), max(sizes.values())
        assert hi < 1.2 * lo


class TestGunrockMappings:
    @pytest.mark.parametrize("mapping", MAPPINGS)
    def test_all_mappings_correct(self, social, mapping):
        g, src, ref = social
        r = GunrockFramework(mapping=mapping).run(g, "sssp", src)
        assert np.allclose(r.labels, ref)

    def test_thread_mapping_suffers_on_skew(self, social):
        """Per-thread mapping is lockstep-bound on skewed frontiers."""
        g, src, _ = social
        thread = GunrockFramework(mapping="thread").run(g, "bfs", src)
        cta = GunrockFramework(mapping="cta").run(g, "bfs", src)
        assert cta.kernel_ms < thread.kernel_ms

    def test_dynamic_at_least_close_to_best_static(self, social):
        g, src, _ = social
        dynamic = GunrockFramework(mapping="dynamic").run(g, "bfs", src)
        static = {
            m: GunrockFramework(mapping=m).run(g, "bfs", src).kernel_ms
            for m in ("thread", "warp", "cta")
        }
        assert dynamic.kernel_ms <= 1.25 * min(static.values())

    def test_unknown_mapping_rejected(self):
        with pytest.raises(ConfigError):
            GunrockFramework(mapping="tensor")
