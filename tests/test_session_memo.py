"""Tests for the session-level frontier memo: bit-identity with the memo
on or off, hit/miss accounting, boundedness, and entry reuse."""

import numpy as np
import pytest

from repro import EngineSession, EtaGraphConfig
from repro.graph import generators
from repro.graph.weights import attach_weights


@pytest.fixture(scope="module")
def social():
    return attach_weights(generators.rmat(9, 6000, seed=41), seed=42)


def _result_signature(r):
    return (
        r.labels.tobytes(),
        r.total_ms.hex(),
        r.kernel_ms.hex(),
        r.profiler.kernels.unified_cache_hits,
        r.profiler.kernels.l2_hits,
        r.profiler.kernels.threads,
        r.iterations,
    )


class TestMemoBitIdentity:
    @pytest.mark.parametrize("problem", ["bfs", "sssp"])
    def test_memo_on_equals_memo_off(self, social, problem):
        """The memo caches only label-independent values, so every
        query's labels, simulated timings and counters must be
        bit-identical with memoization disabled."""
        sources = [0, 5, 0, 5, 9, 0]
        with EngineSession(social, EtaGraphConfig()) as on, \
                EngineSession(
                    social, EtaGraphConfig(frontier_memo_entries=0)
                ) as off:
            for s in sources:
                r_on = on.query(problem, s)
                r_off = off.query(problem, s)
                assert _result_signature(r_on) == _result_signature(r_off)
            assert on.memo_hits > 0
            assert off.memo_hits == 0 and off.memo_misses == 0

    def test_track_parents_with_memo(self, social):
        cfg = EtaGraphConfig(track_parents=True)
        with EngineSession(social, cfg) as on, \
                EngineSession(
                    social,
                    EtaGraphConfig(track_parents=True,
                                   frontier_memo_entries=0),
                ) as off:
            for s in (3, 3, 3):
                p_on = on.query("bfs", s).extras["parents"]
                p_off = off.query("bfs", s).extras["parents"]
                assert np.array_equal(p_on, p_off)
            assert on.memo_hits > 0

    def test_out_of_core_udc_with_memo(self, social):
        cfg = EtaGraphConfig(udc_mode="out_of_core")
        with EngineSession(social, cfg) as on, \
                EngineSession(
                    social,
                    EtaGraphConfig(udc_mode="out_of_core",
                                   frontier_memo_entries=0),
                ) as off:
            for s in (1, 1):
                assert _result_signature(on.query("bfs", s)) == \
                    _result_signature(off.query("bfs", s))
            assert on.memo_hits > 0


class TestMemoCollision:
    def test_digest_collision_is_served_as_miss(self, social, monkeypatch):
        """Two different frontiers forced onto one digest must NOT share
        a memo entry: the entry stores the exact active-set bytes and a
        mismatch demotes the hit to a miss (counted in
        ``memo_collisions``).  Pre-fix, the second query silently reused
        the first query's expansion and produced wrong labels."""
        from repro.core import session as session_module

        baseline = {}
        with EngineSession(social) as ses:
            for s in (0, 7):
                baseline[s] = ses.query("bfs", s).labels.copy()

        class _ConstantDigest:
            def __init__(self, *_args, **_kwargs):
                pass

            def digest(self):
                return b"\x00" * 16

        monkeypatch.setattr(
            session_module.hashlib, "blake2b", _ConstantDigest
        )
        with EngineSession(social) as ses:
            r0 = ses.query("bfs", 0)
            r7 = ses.query("bfs", 7)
            # The seed frontiers {0} and {7} share num_active and the
            # labels buffer, so under a constant digest their keys
            # collide; the exact-bytes check must catch it.
            assert ses.memo_collisions > 0
            assert ses.memo_hits == 0
            assert np.array_equal(r0.labels, baseline[0])
            assert np.array_equal(r7.labels, baseline[7])
            snap = ses.metrics_snapshot()
            assert snap["gauges"]["memo.collisions"] == ses.memo_collisions

    def test_identical_frontiers_still_hit(self, social, monkeypatch):
        """The exact-bytes verification must not break genuine reuse:
        replaying a query under a constant digest still hits."""
        from repro.core import session as session_module

        class _ConstantDigest:
            def __init__(self, *_args, **_kwargs):
                pass

            def digest(self):
                return b"\x01" * 16

        monkeypatch.setattr(
            session_module.hashlib, "blake2b", _ConstantDigest
        )
        with EngineSession(social) as ses:
            first = ses.query("bfs", 4)
            second = ses.query("bfs", 4)
            # Frontiers whose sizes repeat within the query thrash the
            # colliding slot, but every unique-size frontier must still
            # hit on the replay.
            assert ses.memo_hits > 0
            assert np.array_equal(first.labels, second.labels)


class TestMemoAccounting:
    def test_repeated_source_hits(self, social):
        with EngineSession(social) as ses:
            ses.query("bfs", 4)
            misses_first = ses.memo_misses
            assert ses.memo_hits == 0
            r = ses.query("bfs", 4)
            # An identical query replays identical frontiers: every
            # iteration after the repeat hits.
            assert ses.memo_hits == misses_first == r.iterations
            assert ses.memo_misses == misses_first

    def test_memo_bounded(self, social):
        cfg = EtaGraphConfig(frontier_memo_entries=3)
        with EngineSession(social, cfg) as ses:
            for s in range(6):
                ses.query("bfs", s)
            assert ses.memo_entries <= 3

    def test_memo_bytes_tracks_entries(self, social):
        with EngineSession(social) as ses:
            assert ses.memo_bytes == 0
            ses.query("bfs", 0)
            assert ses.memo_entries > 0
            assert ses.memo_bytes > 0

    def test_mixed_problems_do_not_collide(self, social):
        """BFS (int32 labels, no weights) and SSSP (float labels,
        weights) frontiers may share content; their memo entries must
        stay distinct and the results exact."""
        from repro.core.engine import EtaGraphEngine

        with EngineSession(social) as ses:
            b1 = ses.query("bfs", 2)
            s1 = ses.query("sssp", 2)
            b2 = ses.query("bfs", 2)
            s2 = ses.query("sssp", 2)
        assert np.array_equal(b1.labels, b2.labels)
        assert np.array_equal(s1.labels, s2.labels)
        engine = EtaGraphEngine(social, EtaGraphConfig())
        assert np.array_equal(engine.run("bfs", 2).labels, b1.labels)
        assert np.array_equal(engine.run("sssp", 2).labels, s1.labels)
