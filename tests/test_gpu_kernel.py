"""Tests for the kernel cost model: SIMT lockstep, SMP effects, occupancy,
roofline composition and warp sampling."""

import numpy as np
import pytest

from repro.errors import InvalidLaunchError
from repro.gpu import sharedmem, warp
from repro.gpu.cache import CacheHierarchy
from repro.gpu.device import GTX_1080TI
from repro.gpu.kernel import (
    TRACE_CAP,
    simulate_streaming_kernel,
    simulate_vertex_kernel,
)
from repro.gpu.memory import DeviceMemory


def make_launch(n_threads, degree, *, spread=False, seed=0):
    """Build a synthetic kernel launch over a fake CSR layout."""
    rng = np.random.default_rng(seed)
    if spread:
        degrees = rng.integers(0, degree * 2 + 1, size=n_threads)
    else:
        degrees = np.full(n_threads, degree, dtype=np.int64)
    starts = np.concatenate([[0], np.cumsum(degrees)[:-1]]).astype(np.int64)
    total = int(degrees.sum())
    neighbors = rng.integers(0, max(n_threads, 1), size=total)
    mem = DeviceMemory(GTX_1080TI)
    adj = mem.alloc("adj", np.zeros(max(total, 1), dtype=np.int32))
    labels = mem.alloc("labels", np.zeros(max(n_threads, 1), dtype=np.float32))
    vas = mem.alloc("vas", np.zeros(3 * max(n_threads, 1), dtype=np.int32))
    return dict(
        starts=starts,
        degrees=degrees,
        adj_array=adj,
        neighbor_ids=neighbors,
        label_array=labels,
        meta_array=vas,
        meta_words_per_thread=3,
    )


def run(caches=None, **kw):
    caches = caches or CacheHierarchy(GTX_1080TI)
    return simulate_vertex_kernel(GTX_1080TI, caches, **kw)


class TestWarpHelpers:
    def test_per_warp_max(self):
        values = np.zeros(64)
        values[5] = 10
        values[40] = 3
        out = warp.per_warp_max(values)
        assert list(out) == [10, 3]

    def test_per_warp_sum_with_padding(self):
        out = warp.per_warp_sum(np.ones(40))
        assert list(out) == [32, 8]

    def test_warp_efficiency_balanced(self):
        assert warp.warp_efficiency(np.full(64, 7)) == pytest.approx(1.0)

    def test_warp_efficiency_skewed(self):
        values = np.ones(32)
        values[0] = 100
        eff = warp.warp_efficiency(values)
        assert eff == pytest.approx((100 + 31) / (100 * 32))

    def test_warp_efficiency_empty(self):
        assert warp.warp_efficiency(np.array([])) == 1.0

    def test_assign_warps_round_robin(self):
        out = warp.assign_warps_to_sms(np.ones(10), num_sms=4)
        assert list(out) == [3, 3, 2, 2]


class TestOccupancy:
    def test_unlimited_without_shared(self):
        occ = sharedmem.occupancy(GTX_1080TI, 256)
        assert occ.warps_per_sm == 64

    def test_shared_memory_limits_blocks(self):
        # 256 threads * 32 words * 4 B = 32 KiB/block; 96 KiB SM -> 3 blocks.
        shared = sharedmem.smp_shared_bytes_per_block(256, 32)
        occ = sharedmem.occupancy(GTX_1080TI, 256, shared)
        assert occ.blocks_per_sm == 3
        assert occ.warps_per_sm == 24

    def test_block_too_large_rejected(self):
        with pytest.raises(InvalidLaunchError):
            sharedmem.occupancy(GTX_1080TI, 2048)

    def test_shared_exceeding_sm_rejected(self):
        with pytest.raises(InvalidLaunchError):
            sharedmem.occupancy(GTX_1080TI, 256, 100 * 1024 * 2)

    def test_invalid_smp_params_rejected(self):
        with pytest.raises(InvalidLaunchError):
            sharedmem.smp_shared_bytes_per_block(0, 4)
        with pytest.raises(InvalidLaunchError):
            sharedmem.smp_shared_bytes_per_block(32, 0)


class TestVertexKernel:
    def test_empty_launch_rejected(self):
        kw = make_launch(1, 1)
        kw["starts"] = np.empty(0, dtype=np.int64)
        kw["degrees"] = np.empty(0, dtype=np.int64)
        kw["neighbor_ids"] = np.empty(0, dtype=np.int64)
        with pytest.raises(InvalidLaunchError):
            run(**kw)

    def test_neighbor_count_must_match_degrees(self):
        kw = make_launch(10, 4)
        kw["neighbor_ids"] = kw["neighbor_ids"][:-1]
        with pytest.raises(InvalidLaunchError):
            run(**kw)

    def test_smp_requires_degree_limit(self):
        kw = make_launch(10, 4)
        with pytest.raises(InvalidLaunchError):
            run(smp=True, **kw)

    def test_time_positive_and_includes_launch(self):
        t = run(**make_launch(64, 4))
        assert t.time_ms > GTX_1080TI.kernel_launch_us * 1e-3
        assert t.counters.launches == 1

    def test_skew_slows_lockstep_issue(self):
        """One hub lane should dominate its warp (the UDC motivation)."""
        balanced = make_launch(32, 8, seed=1)
        t_bal = run(**balanced)
        skew = make_launch(32, 8, seed=1)
        degrees = np.full(32, 1, dtype=np.int64)
        degrees[0] = 8 * 32 - 31  # same total edges, all in lane 0
        skew["degrees"] = degrees
        skew["starts"] = np.concatenate([[0], np.cumsum(degrees)[:-1]])
        t_skew = run(**skew)
        assert t_skew.compute_ms > 2 * t_bal.compute_ms

    def test_balanced_issue_ignores_skew(self):
        skew = make_launch(32, 8, seed=1)
        degrees = np.full(32, 1, dtype=np.int64)
        degrees[0] = 8 * 32 - 31
        skew["degrees"] = degrees
        skew["starts"] = np.concatenate([[0], np.cumsum(degrees)[:-1]])
        t_max = run(**skew)
        skew2 = dict(skew)
        t_bal = run(balanced_issue=True, **skew2)
        assert t_bal.compute_ms < t_max.compute_ms

    def test_smp_reduces_transactions(self):
        """Fig. 7: SMP roughly halves global load transactions."""
        kw1 = make_launch(2048, 12, seed=2)
        t_base = run(**kw1)
        kw2 = make_launch(2048, 12, seed=2)
        t_smp = run(smp=True, degree_limit=12, **kw2)
        ratio = (
            t_smp.counters.global_load_transactions
            / t_base.counters.global_load_transactions
        )
        assert 0.3 < ratio < 0.75

    def test_smp_improves_ipc(self):
        kw1 = make_launch(2048, 12, seed=2)
        t_base = run(**kw1)
        kw2 = make_launch(2048, 12, seed=2)
        t_smp = run(smp=True, degree_limit=12, **kw2)
        assert t_smp.counters.ipc > 1.1 * t_base.counters.ipc

    def test_smp_is_faster(self):
        kw1 = make_launch(4096, 12, seed=3)
        t_base = run(**kw1)
        kw2 = make_launch(4096, 12, seed=3)
        t_smp = run(smp=True, degree_limit=12, **kw2)
        assert t_smp.time_ms < t_base.time_ms

    def test_weighted_kernel_reads_more(self):
        kw = make_launch(512, 8, seed=4)
        mem = DeviceMemory(GTX_1080TI)
        weights = mem.alloc(
            "w", np.zeros(int(kw["degrees"].sum()), dtype=np.float32)
        )
        t_unw = run(**make_launch(512, 8, seed=4))
        t_w = run(weight_array=weights, **kw)
        assert (
            t_w.counters.global_load_transactions
            > t_unw.counters.global_load_transactions
        )

    def test_idle_threads_add_cost(self):
        t_active = run(**make_launch(256, 4, seed=5))
        t_idle = run(idle_threads=1_000_000, **make_launch(256, 4, seed=5))
        assert t_idle.time_ms > t_active.time_ms
        assert t_idle.counters.instructions > t_active.counters.instructions

    def test_updates_produce_stores(self):
        t = run(updates=100, **make_launch(64, 4))
        assert t.counters.global_store_transactions == 100
        assert t.counters.dram_write_bytes == 100 * 32

    def test_warp_sampling_preserves_scaled_totals(self):
        """A launch above TRACE_CAP must report totals close to the
        unsampled equivalent (built from identical per-warp structure)."""
        degree = 16
        n_big = (TRACE_CAP // degree) * 2
        big = make_launch(n_big, degree, seed=6)
        t_big = run(**big)
        # Expected edges: every thread has `degree` neighbors.
        assert t_big.counters.threads == pytest.approx(n_big, rel=0.02)
        small = make_launch(n_big // 4, degree, seed=6)
        t_small = run(**small)
        assert t_big.counters.instructions == pytest.approx(
            4 * t_small.counters.instructions, rel=0.05
        )
        assert t_big.counters.global_load_transactions == pytest.approx(
            4 * t_small.counters.global_load_transactions, rel=0.15
        )

    def test_zero_degree_threads_are_cheap(self):
        kw = make_launch(128, 0)
        t = run(**kw)
        assert t.counters.global_load_transactions <= 128 * 3
        assert t.time_ms < 0.1


class TestStreamingKernel:
    def test_streaming_transactions_are_sequential(self):
        caches = CacheHierarchy(GTX_1080TI)
        t = simulate_streaming_kernel(
            GTX_1080TI, caches, read_bytes=3200, write_bytes=0, n_threads=100
        )
        assert t.counters.global_load_transactions == 100

    def test_write_bytes_counted(self):
        caches = CacheHierarchy(GTX_1080TI)
        t = simulate_streaming_kernel(
            GTX_1080TI, caches, read_bytes=0, write_bytes=6400, n_threads=10
        )
        assert t.counters.dram_write_bytes == 6400

    def test_scatter_component_traced(self):
        caches = CacheHierarchy(GTX_1080TI)
        idx = np.arange(1000) * 100  # scattered
        t = simulate_streaming_kernel(
            GTX_1080TI,
            caches,
            read_bytes=0,
            write_bytes=0,
            n_threads=1000,
            scatter_base_address=0,
            scatter_indices=idx,
        )
        assert t.counters.global_load_transactions >= 900

    def test_empty_launch_rejected(self):
        with pytest.raises(InvalidLaunchError):
            simulate_streaming_kernel(
                GTX_1080TI, CacheHierarchy(GTX_1080TI),
                read_bytes=0, write_bytes=0, n_threads=0,
            )

    def test_streaming_faster_than_scattered_per_byte(self):
        """CuSha's entire premise: coalesced streams beat random gathers."""
        caches = CacheHierarchy(GTX_1080TI)
        nbytes = 400_000
        t_stream = simulate_streaming_kernel(
            GTX_1080TI, caches, read_bytes=nbytes, write_bytes=0,
            n_threads=nbytes // 4,
        )
        kw = make_launch(nbytes // 4 // 8, 8, seed=7)
        t_scatter = run(**kw)
        assert t_stream.time_ms < t_scatter.time_ms
