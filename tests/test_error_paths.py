"""Attribute fidelity and typed-raise coverage for existing error paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multi import run_batch
from repro.core.session import EngineSession
from repro.errors import (
    DeviceOutOfMemoryError,
    GraphFormatError,
    InvalidLaunchError,
    ReproError,
    SessionClosedError,
)
from repro.gpu.device import GTX_1080TI
from repro.gpu.memory import DeviceMemory
from repro.graph import io
from repro.utils.units import KIB, MIB


class TestDeviceOutOfMemoryAttributes:
    def test_attributes_reflect_the_failing_request(self):
        memory = DeviceMemory(GTX_1080TI.with_capacity(1 * MIB))
        held = memory.alloc("held", np.zeros(256 * KIB, dtype=np.uint8))
        with pytest.raises(DeviceOutOfMemoryError) as exc:
            memory.alloc("big", np.zeros(900 * KIB, dtype=np.uint8))
        assert exc.value.requested == 900 * KIB
        assert exc.value.in_use == held.nbytes == 256 * KIB
        assert exc.value.capacity == 1 * MIB
        # The message carries the same numbers an operator needs.
        message = str(exc.value)
        assert "921600" in message or "900" in message

    def test_is_a_typed_repro_error(self):
        assert issubclass(DeviceOutOfMemoryError, ReproError)


class TestClosedSession:
    def test_every_public_method_raises_session_closed(self, tiny_graph):
        session = EngineSession(tiny_graph)
        session.query("bfs", 0)
        session.close()
        with pytest.raises(SessionClosedError):
            session.prepare("bfs")
        with pytest.raises(SessionClosedError):
            session.query("bfs", 0)
        with pytest.raises(SessionClosedError):
            run_batch(tiny_graph, [0, 1], "bfs", session=session)

    def test_session_closed_is_an_invalid_launch(self, tiny_graph):
        # Callers that caught InvalidLaunchError before the subtype
        # existed keep working.
        session = EngineSession(tiny_graph)
        session.close()
        with pytest.raises(InvalidLaunchError):
            session.query("bfs", 0)


class TestGraphFormatErrors:
    def test_truncated_binary_header(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_bytes(b"\x00" * 10)
        with pytest.raises(GraphFormatError, match="truncated header"):
            io.load_galois_binary(path)

    def test_truncated_binary_body(self, tmp_path, tiny_graph):
        path = tmp_path / "g.gr"
        io.save_galois_binary(tiny_graph, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 8])
        with pytest.raises(GraphFormatError, match="truncated body"):
            io.load_galois_binary(path)

    def test_bad_magic(self, tmp_path, tiny_graph):
        path = tmp_path / "g.gr"
        io.save_galois_binary(tiny_graph, path)
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(GraphFormatError, match="bad magic"):
            io.load_galois_binary(path)

    def test_unsupported_version(self, tmp_path, tiny_graph):
        path = tmp_path / "g.gr"
        io.save_galois_binary(tiny_graph, path)
        raw = bytearray(path.read_bytes())
        raw[4] = 0x7F  # version word
        path.write_bytes(bytes(raw))
        with pytest.raises(GraphFormatError, match="unsupported version"):
            io.load_galois_binary(path)

    def test_unparseable_matrix_market(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("this is not a MatrixMarket file\n1 2 3\n")
        with pytest.raises(GraphFormatError, match="unparseable"):
            io.load_matrix_market(path)

    def test_unparseable_edge_list(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\nnot numbers here\n")
        with pytest.raises(GraphFormatError, match="unparseable"):
            io.load_edgelist_text(path)

    def test_load_any_dispatches_errors_too(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_bytes(b"nope")
        with pytest.raises(GraphFormatError):
            io.load_any(path)
