"""Unit tests for CSRGraph construction, views and conversions."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph, VERTEX_DTYPE
from repro.graph.builder import build_csr_from_edges, symmetrize
from repro.graph import generators


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges([0, 0, 1, 2], [1, 2, 2, 0])
        assert g.num_vertices == 3
        assert g.num_edges == 4
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(1)) == [2]
        assert list(g.neighbors(2)) == [0]

    def test_adjacency_sorted_within_vertex(self):
        g = CSRGraph.from_edges([0, 0, 0], [5, 1, 3], num_vertices=6)
        assert list(g.neighbors(0)) == [1, 3, 5]

    def test_dedup_keeps_single_copy(self):
        g = CSRGraph.from_edges([0, 0, 0], [1, 1, 1], num_vertices=2)
        assert g.num_edges == 1

    def test_dedup_keeps_first_weight(self):
        g = CSRGraph.from_edges(
            [0, 0], [1, 1], num_vertices=2, weights=[3.0, 9.0]
        )
        assert g.num_edges == 1
        assert g.edge_weights[0] == 3.0

    def test_dedup_disabled(self):
        g = CSRGraph.from_edges([0, 0], [1, 1], num_vertices=2, dedup=False)
        assert g.num_edges == 2

    def test_empty_graph(self):
        g = CSRGraph.from_edges([], [], num_vertices=4)
        assert g.num_vertices == 4
        assert g.num_edges == 0
        assert g.average_degree == 0.0

    def test_zero_vertex_graph(self):
        g = CSRGraph(np.zeros(1, dtype=np.int32), np.empty(0, dtype=np.int32))
        assert g.num_vertices == 0
        assert g.max_out_degree() == 0

    def test_isolated_trailing_vertices(self):
        g = CSRGraph.from_edges([0], [1], num_vertices=10)
        assert g.num_vertices == 10
        assert g.out_degree(9) == 0

    def test_negative_vertex_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges([-1], [0])

    def test_endpoint_exceeding_num_vertices_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges([0], [5], num_vertices=3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(GraphFormatError):
            build_csr_from_edges(np.array([0, 1]), np.array([1]))

    def test_weights_length_mismatch_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges([0], [1], weights=[1.0, 2.0])


class TestValidation:
    def test_bad_first_offset(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([1, 2]), np.array([0, 0]))

    def test_offsets_must_match_edge_count(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 3]), np.array([0]))

    def test_decreasing_offsets_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([0, 0, 0]))

    def test_column_out_of_range_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 1]), np.array([7]))

    def test_arrays_read_only(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.column_indices[0] = 99
        with pytest.raises(ValueError):
            tiny_graph.row_offsets[0] = 1


class TestAccessors:
    def test_degrees(self, tiny_graph):
        deg = tiny_graph.out_degrees()
        assert deg[1] == 5  # one duplicate edge dropped
        assert deg[2] == 0
        assert tiny_graph.max_out_degree() == 5

    def test_edge_sources_aligns_with_columns(self, skewed_graph):
        src = skewed_graph.edge_sources()
        assert len(src) == skewed_graph.num_edges
        # Every (src, dst) recovered from the expansion must round-trip.
        g2 = CSRGraph.from_edges(
            src, skewed_graph.column_indices,
            num_vertices=skewed_graph.num_vertices, dedup=False,
        )
        assert g2 == skewed_graph

    def test_neighbors_is_view(self, tiny_graph):
        n = tiny_graph.neighbors(0)
        assert n.base is not None  # a view, not a copy

    def test_neighbor_weights_requires_weights(self, tiny_graph):
        with pytest.raises(GraphFormatError):
            tiny_graph.neighbor_weights(0)

    def test_iter_edges_matches_columns(self, tiny_graph):
        edges = list(tiny_graph.iter_edges())
        assert len(edges) == tiny_graph.num_edges
        assert (0, 1) in edges and (5, 1) in edges


class TestConversions:
    def test_reverse_twice_is_identity(self, skewed_graph):
        assert skewed_graph.reverse().reverse() == skewed_graph

    def test_reverse_swaps_edges(self):
        g = CSRGraph.from_edges([0, 1], [1, 2], num_vertices=3)
        r = g.reverse()
        assert list(r.neighbors(1)) == [0]
        assert list(r.neighbors(2)) == [1]
        assert list(r.neighbors(0)) == []

    def test_reverse_preserves_weights(self):
        g = CSRGraph.from_edges([0], [1], num_vertices=2, weights=[4.5])
        r = g.reverse()
        assert r.edge_weights is not None
        assert r.neighbor_weights(1)[0] == 4.5

    def test_to_scipy_roundtrip(self, skewed_graph):
        m = skewed_graph.to_scipy()
        assert m.nnz == skewed_graph.num_edges
        coo = m.tocoo()
        g2 = CSRGraph.from_edges(
            coo.row, coo.col, num_vertices=skewed_graph.num_vertices
        )
        assert g2 == skewed_graph

    def test_with_without_weights(self, tiny_graph):
        w = np.ones(tiny_graph.num_edges, dtype=np.float32)
        wg = tiny_graph.with_weights(w)
        assert wg.is_weighted
        assert wg.without_weights() == tiny_graph
        assert tiny_graph.without_weights() is tiny_graph


class TestSpaceAccounting:
    def test_topology_words_formula(self, skewed_graph):
        g = skewed_graph
        # |E| + |V| words — Table I's accounting; the offsets array's
        # storage sentinel is excluded.
        assert g.topology_words() == g.num_edges + g.num_vertices

    def test_nbytes_includes_weights(self, weighted_skewed_graph):
        g = weighted_skewed_graph
        assert g.nbytes == g.without_weights().nbytes + 4 * g.num_edges

    def test_device_arrays_keys(self, weighted_skewed_graph):
        arrays = weighted_skewed_graph.device_arrays()
        assert set(arrays) == {"row_offsets", "column_indices", "edge_weights"}


class TestBuilderHelpers:
    def test_symmetrize(self):
        src, dst = symmetrize(np.array([0, 1]), np.array([1, 2]))
        g = CSRGraph.from_edges(src, dst, num_vertices=3)
        assert (1, 0) in list(g.iter_edges())
        assert (2, 1) in list(g.iter_edges())

    def test_vertex_dtype_is_int32(self, skewed_graph):
        assert skewed_graph.column_indices.dtype == VERTEX_DTYPE

    def test_generators_produce_valid_csr(self):
        for g in (
            generators.path_graph(5),
            generators.cycle_graph(5),
            generators.star_graph(7),
            generators.complete_graph(5),
            generators.grid_graph(3, 4),
        ):
            # _validate raises on any inconsistency.
            CSRGraph(g.row_offsets, g.column_indices)
