"""Tests for the benchmark reporting helpers."""

import math

from repro.bench.reporting import fmt_speedup, grid_table, ratio
from repro.bench.runner import CellResult


def make_cell(fw, ds, *, oom=False, kernel=1.0, total=2.0):
    return CellResult(
        framework=fw, algorithm="bfs", dataset=ds,
        oom=oom, kernel_ms=kernel, total_ms=total,
    )


class TestGridTable:
    def test_baseline_cells_show_kernel_and_total(self):
        cells = {("tigr", "lj"): make_cell("tigr", "lj", kernel=1.5, total=3.0)}
        out = grid_table("T", ["tigr"], ["lj"], cells)
        assert "1.500/3.000" in out

    def test_etagraph_rows_show_total_only(self):
        cells = {("etagraph", "lj"): make_cell("etagraph", "lj", total=3.0)}
        out = grid_table("T", ["etagraph"], ["lj"], cells,
                         etagraph_rows=["etagraph"])
        assert "3.000" in out
        assert "/" not in out.splitlines()[-1].split("|")[1]

    def test_oom_cells(self):
        cells = {("cusha", "big"): make_cell("cusha", "big", oom=True)}
        out = grid_table("T", ["cusha"], ["big"], cells)
        assert "O.O.M" in out

    def test_missing_cells_dash(self):
        out = grid_table("T", ["cusha"], ["lj"], {})
        assert out.splitlines()[-1].split("|")[1].strip() == "-"

    def test_title_included(self):
        out = grid_table("My Table", ["x"], ["y"], {})
        assert out.splitlines()[0] == "My Table"


class TestHelpers:
    def test_ratio(self):
        assert ratio(6.0, 3.0) == 2.0
        assert math.isinf(ratio(1.0, 0.0))

    def test_fmt_speedup(self):
        assert fmt_speedup(2.5) == "2.50x"

    def test_cell_text_nan_free_for_oom(self):
        cell = make_cell("x", "y", oom=True)
        assert cell.cell_text() == "O.O.M"
        assert cell.cell_text(etagraph_style=True) == "O.O.M"
