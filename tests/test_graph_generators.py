"""Tests for the synthetic generators, including the surrogate-defining
properties (depth, pocket, skew) the evaluation relies on."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graph import generators, properties


class TestRMAT:
    def test_deterministic(self):
        a = generators.rmat(8, 1000, seed=9)
        b = generators.rmat(8, 1000, seed=9)
        assert a == b

    def test_seed_changes_graph(self):
        a = generators.rmat(8, 1000, seed=1)
        b = generators.rmat(8, 1000, seed=2)
        assert a != b

    def test_vertex_space_is_power_of_two(self):
        g = generators.rmat(6, 500, seed=0)
        assert g.num_vertices == 64

    def test_skew_produces_hub(self):
        g = generators.rmat(10, 8192, a=0.57, b=0.19, c=0.19, seed=4)
        deg = g.out_degrees()
        assert deg.max() > 20 * max(deg.mean(), 1e-9)

    def test_uniform_probabilities_give_er_like_graph(self):
        g = generators.rmat(10, 8192, a=0.25, b=0.25, c=0.25, seed=4)
        deg = g.out_degrees()
        assert deg.max() < 10 * max(deg.mean(), 1e-9)

    def test_no_self_loops_by_default(self):
        g = generators.rmat(7, 2000, seed=5)
        src = g.edge_sources()
        assert not np.any(src == g.column_indices)

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(DatasetError):
            generators.rmat(5, 10, a=0.9, b=0.2, c=0.2)

    def test_invalid_scale_rejected(self):
        with pytest.raises(DatasetError):
            generators.rmat(0, 10)


class TestSocialNetwork:
    def test_exact_vertex_count(self):
        g = generators.social_network(1000, 5000, seed=1)
        assert g.num_vertices == 1000

    def test_non_power_of_two_sizes(self):
        g = generators.social_network(777, 3000, seed=2)
        assert g.num_vertices == 777
        assert g.num_edges > 0

    def test_too_small_rejected(self):
        with pytest.raises(DatasetError):
            generators.social_network(1, 10)


class TestWebChain:
    def test_depth_controls_bfs_levels(self):
        g = generators.web_chain(3000, 30000, depth=25, seed=1)
        d = properties.bfs_depth(g, 0)
        assert 25 <= d <= 28  # leaf hop may add one level

    def test_high_activation_without_pocket(self):
        g = generators.web_chain(3000, 30000, depth=10, seed=2)
        assert properties.activation_fraction(g, 0) > 0.9

    def test_scc_smaller_than_reachable_set(self):
        g = generators.web_chain(5000, 60000, depth=12, leaf_fraction=0.35,
                                 seed=3)
        scc = properties.largest_component_fraction(g, strong=True)
        act = properties.activation_fraction(g, 0)
        assert act > 0.9
        assert scc < 0.75  # leaves excluded from the strongly-connected core

    def test_pocket_isolates_source(self):
        g = generators.web_chain(
            5000, 50000, depth=10, pocket_size=40, pocket_depth=4, seed=4
        )
        act = properties.activation_fraction(g, 0)
        assert act == pytest.approx(40 / 5000, rel=0.01)
        assert properties.bfs_depth(g, 0) <= 4

    def test_pocket_all_reachable(self):
        g = generators.web_chain(
            2000, 20000, depth=5, pocket_size=30, pocket_depth=3, seed=5
        )
        assert properties.reachable_mask(g, 0).sum() == 30

    def test_pocket_too_large_rejected(self):
        with pytest.raises(DatasetError):
            generators.web_chain(100, 1000, depth=2, pocket_size=100)

    def test_depth_zero_rejected(self):
        with pytest.raises(DatasetError):
            generators.web_chain(100, 1000, depth=0)

    def test_deterministic(self):
        a = generators.web_chain(1000, 10000, depth=5, seed=6)
        b = generators.web_chain(1000, 10000, depth=5, seed=6)
        assert a == b


class TestSmallGraphs:
    def test_path(self):
        g = generators.path_graph(5)
        assert g.num_edges == 4
        assert properties.bfs_depth(g, 0) == 4

    def test_cycle(self):
        g = generators.cycle_graph(6)
        assert g.num_edges == 6
        assert properties.activation_fraction(g, 0) == 1.0

    def test_star_out(self):
        g = generators.star_graph(9)
        assert g.out_degree(0) == 9
        assert g.max_out_degree() == 9

    def test_star_in(self):
        g = generators.star_graph(9, out=False)
        assert g.out_degree(0) == 0
        assert g.out_degree(1) == 1

    def test_complete(self):
        g = generators.complete_graph(5)
        assert g.num_edges == 20

    def test_grid_dimensions(self):
        g = generators.grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # right + down edges

    def test_erdos_renyi_deterministic(self):
        assert generators.erdos_renyi(100, 500, seed=1) == \
               generators.erdos_renyi(100, 500, seed=1)


class TestSeedDeterminism:
    """Regression tests for the generators' determinism contract: every
    generator draws exclusively from a local ``np.random.default_rng(seed)``
    and never touches the module-global NumPy RNG."""

    CASES = [
        ("rmat", lambda s: generators.rmat(7, 900, seed=s)),
        ("social_network", lambda s: generators.social_network(300, 1500,
                                                               seed=s)),
        ("web_chain", lambda s: generators.web_chain(500, 4000, depth=4,
                                                     seed=s)),
        ("erdos_renyi", lambda s: generators.erdos_renyi(200, 800, seed=s)),
    ]

    @pytest.mark.parametrize("name,make", CASES, ids=[c[0] for c in CASES])
    def test_same_seed_identical(self, name, make):
        assert make(42) == make(42)

    @pytest.mark.parametrize("name,make", CASES, ids=[c[0] for c in CASES])
    def test_different_seeds_differ(self, name, make):
        assert make(42) != make(43)

    def test_weights_deterministic(self):
        from repro.graph.weights import uniform_int_weights

        a = uniform_int_weights(512, seed=9)
        b = uniform_int_weights(512, seed=9)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, uniform_int_weights(512, seed=10))

    @pytest.mark.parametrize("name,make", CASES, ids=[c[0] for c in CASES])
    def test_global_rng_state_untouched(self, name, make):
        """Generators neither read nor advance ``np.random``'s global
        state — reseeding it must not change the output, and generating
        must not consume draws from it."""
        np.random.seed(0)
        a = make(7)
        np.random.seed(12345)
        b = make(7)
        assert a == b
        np.random.seed(99)
        before = np.random.random(4)
        np.random.seed(99)
        make(7)
        after = np.random.random(4)
        assert np.array_equal(before, after)


class TestProperties:
    def test_lcc_weak_vs_strong(self):
        g = generators.path_graph(10)
        assert properties.largest_component_fraction(g) == 1.0
        assert properties.largest_component_fraction(g, strong=True) == 0.1

    def test_reachable_mask_path(self):
        g = generators.path_graph(5)
        mask = properties.reachable_mask(g, 2)
        assert list(mask) == [False, False, True, True, True]

    def test_activation_fraction_empty_graph(self):
        from repro.graph.csr import CSRGraph
        g = CSRGraph(np.zeros(1, dtype=np.int32), np.empty(0, dtype=np.int32))
        assert properties.activation_fraction(g, 0) == 0.0

    def test_degree_stats(self, skewed_graph):
        stats = properties.DegreeStats.of(skewed_graph)
        assert stats.maximum == skewed_graph.max_out_degree()
        assert stats.average == pytest.approx(skewed_graph.average_degree)
        assert stats.zeros == int((skewed_graph.out_degrees() == 0).sum())

    def test_graph_summary(self, skewed_graph):
        s = properties.GraphSummary.of(skewed_graph)
        assert s.num_edges == skewed_graph.num_edges
        assert 0 < s.lcc_fraction <= 1.0

    def test_bfs_depth_disconnected_source(self):
        g = generators.star_graph(4, out=False)  # hub has no out-edges
        assert properties.bfs_depth(g, 0) == 0
