"""Tests for the extension algorithms (CC, delta-PageRank) and the
fixed-point validator."""

import numpy as np
import pytest
import scipy.sparse.csgraph as csgraph
from hypothesis import given, settings, strategies as st

from repro import EtaGraph
from repro.algorithms.cc import ConnectedComponents, weakly_connected_components
from repro.algorithms.validate import validate_labels
from repro.core.engine import EtaGraphEngine
from repro.core.pagerank import delta_pagerank, pagerank_reference
from repro.errors import ConfigError
from repro.graph import generators
from repro.graph.weights import attach_weights


class TestValidator:
    @pytest.fixture(scope="class")
    def workload(self):
        g = attach_weights(generators.rmat(9, 4000, seed=11), seed=12)
        src = int(np.argmax(g.out_degrees()))
        return g, src

    @pytest.mark.parametrize("problem", ["bfs", "sssp", "sswp"])
    def test_engine_output_validates(self, workload, problem):
        g, src = workload
        labels = EtaGraph(g).run(problem, src).labels
        report = validate_labels(g, labels, src, problem)
        assert report.ok, report

    def test_detects_wrong_source(self, workload):
        g, src = workload
        labels = EtaGraph(g).bfs(src).labels.copy()
        labels[src] = 5.0
        report = validate_labels(g, labels, src, "bfs")
        assert not report.ok
        assert report.bad_source

    def test_detects_inconsistent_label(self, workload):
        g, src = workload
        labels = EtaGraph(g).bfs(src).labels.copy()
        # Inflate one reached non-source label: some in-edge now improves it.
        reached = np.flatnonzero(np.isfinite(labels) & (labels > 0))
        labels[reached[0]] += 10
        report = validate_labels(g, labels, src, "bfs")
        assert not report.ok
        assert report.violated_edges > 0

    def test_detects_unwitnessed_label(self, workload):
        g, src = workload
        labels = EtaGraph(g).bfs(src).labels.copy()
        # Deflate a label below anything an in-edge can produce.
        reached = np.flatnonzero(np.isfinite(labels) & (labels > 1))
        labels[reached[0]] = 0.5
        report = validate_labels(g, labels, src, "bfs")
        assert not report.ok

    def test_all_unreachable_is_valid(self):
        g = generators.star_graph(5, out=False)
        labels = EtaGraph(g).bfs(0).labels
        assert validate_labels(g, labels, 0, "bfs").ok


class TestConnectedComponents:
    @given(seed=st.integers(0, 25))
    @settings(max_examples=12, deadline=None)
    def test_matches_scipy_partition(self, seed):
        g = generators.erdos_renyi(150, 300, seed=seed)
        ours = weakly_connected_components(g)
        _, ref = csgraph.connected_components(
            g.to_scipy(), directed=True, connection="weak"
        )
        # Same partition: our label within each scipy component is constant,
        # and distinct across components.
        for comp in np.unique(ref):
            members = np.flatnonzero(ref == comp)
            assert len(np.unique(ours[members])) == 1
        assert len(np.unique(ours)) == len(np.unique(ref))

    def test_component_label_is_min_member(self):
        g = generators.path_graph(6)
        labels = weakly_connected_components(g)
        assert np.all(labels == 0)

    def test_isolated_vertices_are_own_component(self):
        from repro.graph.csr import CSRGraph
        g = CSRGraph.from_edges([0], [1], num_vertices=4)
        labels = weakly_connected_components(g)
        assert labels[0] == labels[1] == 0
        assert labels[2] == 2 and labels[3] == 3

    def test_all_active_initial_frontier(self):
        p = ConnectedComponents()
        assert len(p.initial_frontier(10, 0)) == 10
        assert p.reached_mask(np.arange(5, dtype=np.float32), 0).all()

    def test_runs_through_engine_directly(self):
        g = generators.cycle_graph(20)
        result = EtaGraphEngine(g).run(ConnectedComponents(), 0)
        assert np.all(result.labels == 0)
        assert result.stats.seed_count == 20
        assert result.stats.activation_fraction() == 1.0


class TestDeltaPageRank:
    @pytest.fixture(scope="class")
    def graph(self):
        return generators.rmat(9, 3000, seed=4)

    def test_matches_power_iteration(self, graph):
        pr = delta_pagerank(graph, tolerance=1e-7)
        ref = pagerank_reference(graph, iterations=500)
        assert np.abs(pr.ranks - ref).max() < 1e-4

    def test_rank_mass_conserved(self, graph):
        """Total rank == injected mass minus undistributed residual; with
        a tight tolerance this approaches (1 - d) * |V| plus mass retained
        through sink handling."""
        pr = delta_pagerank(graph, tolerance=1e-9)
        assert pr.ranks.min() >= 1e-9  # every vertex got its base mass
        assert np.isfinite(pr.ranks).all()

    def test_hub_ranks_highest(self, graph):
        pr = delta_pagerank(graph)
        top = pr.top_vertices(5)
        in_deg = np.bincount(graph.column_indices,
                             minlength=graph.num_vertices)
        # The top-ranked vertex is among the top in-degree vertices.
        assert in_deg[top[0]] >= np.partition(in_deg, -10)[-10]

    def test_active_set_shrinks(self, graph):
        pr = delta_pagerank(graph, tolerance=1e-6)
        hist = pr.active_history
        assert hist[0] == graph.num_vertices
        assert hist[-1] < hist[0]

    def test_looser_tolerance_converges_faster(self, graph):
        fast = delta_pagerank(graph, tolerance=1e-3)
        slow = delta_pagerank(graph, tolerance=1e-7)
        assert fast.iterations < slow.iterations
        assert fast.total_ms < slow.total_ms

    def test_smp_config_does_not_change_ranks(self, graph):
        from repro.core.config import EtaGraphConfig
        a = delta_pagerank(graph, config=EtaGraphConfig(smp=False))
        b = delta_pagerank(graph)
        assert np.allclose(a.ranks, b.ranks)

    def test_invalid_params_rejected(self, graph):
        with pytest.raises(ConfigError):
            delta_pagerank(graph, damping=1.5)
        with pytest.raises(ConfigError):
            delta_pagerank(graph, tolerance=0)
