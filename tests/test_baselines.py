"""Tests for the baseline frameworks: functional equivalence with
EtaGraph and the cost-model properties Table III depends on."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import EtaGraph
from repro.algorithms import cpu_reference
from repro.baselines import get_framework
from repro.baselines.base import propagate_step
from repro.errors import ConfigError, DeviceOutOfMemoryError
from repro.gpu.device import GTX_1080TI
from repro.graph import generators
from repro.graph.weights import attach_weights
from repro.utils.units import KIB, MIB

FRAMEWORKS = ["cusha", "gunrock", "tigr", "simple-vc"]


@pytest.fixture(scope="module")
def social():
    g = attach_weights(generators.rmat(10, 12000, seed=17), seed=18)
    src = int(np.argmax(g.out_degrees()))
    return g, src


class TestRegistry:
    def test_all_frameworks_constructible(self):
        for name in FRAMEWORKS:
            fw = get_framework(name)
            assert fw.name == name

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            get_framework("mapgraph")


class TestEquivalence:
    @pytest.mark.parametrize("fw", FRAMEWORKS)
    @pytest.mark.parametrize("problem", ["bfs", "sssp", "sswp"])
    def test_matches_oracle(self, social, fw, problem):
        g, src = social
        result = get_framework(fw).run(g, problem, src)
        expected = cpu_reference.reference_labels(g, src, problem)
        assert np.allclose(result.labels, expected)

    @pytest.mark.parametrize("fw", FRAMEWORKS)
    def test_matches_etagraph(self, social, fw):
        g, src = social
        ours = EtaGraph(g).sssp(src)
        theirs = get_framework(fw).run(g, "sssp", src)
        assert np.allclose(ours.labels, theirs.labels)

    @given(seed=st.integers(0, 15))
    @settings(max_examples=8, deadline=None)
    def test_all_engines_agree_on_random_graphs(self, seed):
        g = attach_weights(generators.erdos_renyi(200, 1200, seed=seed),
                           seed=seed)
        labels = [EtaGraph(g).sssp(0).labels]
        for fw in ("gunrock", "tigr"):
            labels.append(get_framework(fw).run(g, "sssp", 0).labels)
        for other in labels[1:]:
            assert np.allclose(labels[0], other)

    def test_iteration_counts_match(self, social):
        """Synchronous relaxation converges in the same number of rounds
        in every engine (the fixpoint trajectory is identical)."""
        g, src = social
        ours = EtaGraph(g).bfs(src)
        gunrock = get_framework("gunrock").run(g, "bfs", src)
        tigr = get_framework("tigr").run(g, "bfs", src)
        assert ours.iterations == gunrock.iterations == tigr.iterations


class TestCostModelShape:
    def test_total_exceeds_kernel(self, social):
        g, src = social
        for fw in FRAMEWORKS:
            r = get_framework(fw).run(g, "bfs", src)
            assert r.total_ms > r.kernel_ms > 0

    def test_cusha_kernel_grows_with_iterations(self):
        """Edge-centric full passes: kernel time ~ iterations x |E|."""
        shallow = generators.web_chain(4000, 40_000, depth=3, seed=1)
        deep = generators.web_chain(4000, 40_000, depth=30, seed=1)
        fw = get_framework("cusha")
        t_shallow = fw.run(shallow, "bfs", 0)
        t_deep = fw.run(deep, "bfs", 0)
        assert t_deep.kernel_ms > 3 * t_shallow.kernel_ms

    def test_etagraph_beats_tigr_on_deep_graphs(self):
        """The uk-2005 effect: many iterations magnify frontier selectivity
        (Tigr launches all virtual nodes every iteration)."""
        deep = generators.web_chain(30_000, 300_000, depth=60, seed=2)
        eta = EtaGraph(deep).bfs(0)
        tigr = get_framework("tigr").run(deep, "bfs", 0)
        assert eta.total_ms < tigr.total_ms

    def test_simple_vc_slowest_on_skewed_graph(self):
        # Large enough that lockstep long-tail and full-sweep launches
        # dominate the per-iteration launch overhead EtaGraph pays.
        g = generators.rmat(13, 250_000, seed=21)
        src = int(np.argmax(g.out_degrees()))
        naive = get_framework("simple-vc").run(g, "bfs", src)
        eta = EtaGraph(g).bfs(src)
        assert naive.kernel_ms > eta.kernel_ms

    def test_device_bytes_ordering(self, social):
        """Footprints must follow Table I: CuSha > Gunrock > Tigr > CSR."""
        g, src = social
        sizes = {
            fw: get_framework(fw).run(g, "sssp", src).device_bytes
            for fw in ("cusha", "gunrock", "tigr")
        }
        eta = EtaGraph(g).sssp(src)
        csr_bytes = eta.um_bytes + eta.device_bytes
        assert sizes["cusha"] > sizes["gunrock"] > sizes["tigr"]
        assert sizes["tigr"] > csr_bytes * 0.8  # VST ~1.3x topology only


class TestOOM:
    def test_cusha_ooms_first(self):
        g = generators.rmat(12, 150_000, seed=3)
        # Capacity that fits CSR comfortably but not 4-words-per-edge shards.
        spec = GTX_1080TI.with_capacity(
            3 * g.num_edges * 4 + 10 * g.num_vertices * 4
        )
        with pytest.raises(DeviceOutOfMemoryError):
            get_framework("cusha", spec).run(g, "bfs", 0)
        # Tigr and EtaGraph still fit.
        get_framework("tigr", spec).run(g, "bfs", 0)

    def test_everything_ooms_at_tiny_capacity(self):
        g = generators.rmat(10, 20_000, seed=4)
        spec = GTX_1080TI.with_capacity(8 * KIB)
        for fw in FRAMEWORKS:
            with pytest.raises(DeviceOutOfMemoryError):
                get_framework(fw, spec).run(g, "bfs", 0)

    def test_etagraph_survives_via_oversubscription(self):
        from repro.core.engine import EtaGraphEngine
        from repro.core.config import EtaGraphConfig
        g = generators.rmat(10, 20_000, seed=4)
        # Enough for working arrays but not the topology: UM oversubscribes.
        spec = GTX_1080TI.with_capacity(96 * KIB)
        result = EtaGraphEngine(g, EtaGraphConfig(), spec).run("bfs", 0)
        assert result.oversubscribed
        expected = cpu_reference.bfs_levels(g, 0)
        assert np.array_equal(result.labels, expected)


class TestPropagateStep:
    def test_empty_active(self, social):
        g, _ = social
        problem = EtaGraph(g)._engine  # noqa: F841 - construct engine path
        from repro.algorithms import get_problem
        labels = get_problem("bfs").initial_labels(g.num_vertices, 0)
        changed, attempted, nbr, edges = propagate_step(
            g, labels, np.empty(0, dtype=np.int64), get_problem("bfs")
        )
        assert len(changed) == 0 and attempted == 0 and edges == 0

    def test_single_step_from_source(self):
        from repro.algorithms import get_problem
        g = generators.star_graph(5)
        problem = get_problem("bfs")
        labels = problem.initial_labels(6, 0)
        changed, attempted, nbr, edges = propagate_step(
            g, labels, np.array([0]), problem
        )
        assert sorted(changed.tolist()) == [1, 2, 3, 4, 5]
        assert attempted == 5
        assert edges == 5

    def test_no_change_on_settled_labels(self):
        from repro.algorithms import get_problem
        g = generators.path_graph(4)
        problem = get_problem("bfs")
        labels = np.array([0, 1, 2, 3], dtype=np.float32)
        changed, attempted, _, _ = propagate_step(
            g, labels, np.array([0, 1, 2]), problem
        )
        assert len(changed) == 0
        assert attempted == 0
