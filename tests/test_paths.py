"""Tests for parent tracking, path reconstruction and early-exit BFS."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import EtaGraph, EtaGraphConfig
from repro.algorithms.paths import (
    NO_PARENT,
    PathError,
    reconstruct_path,
    verify_path,
)
from repro.errors import ConfigError, InvalidLaunchError
from repro.graph import generators
from repro.graph.weights import attach_weights


@pytest.fixture(scope="module")
def social():
    g = attach_weights(generators.rmat(9, 5000, seed=81), seed=82)
    src = int(np.argmax(g.out_degrees()))
    return g, src


def run_with_parents(g, src, problem):
    cfg = EtaGraphConfig(track_parents=True)
    return EtaGraph(g, cfg).run(problem, src)


class TestParentTracking:
    @pytest.mark.parametrize("problem", ["bfs", "sssp", "sswp"])
    def test_every_reached_vertex_has_valid_path(self, social, problem):
        g, src = social
        result = run_with_parents(g, src, problem)
        parents = result.extras["parents"]
        reached = np.flatnonzero(
            np.isfinite(result.labels) if problem != "sswp"
            else result.labels > 0
        )
        rng = np.random.default_rng(1)
        sample = rng.choice(reached, size=min(25, len(reached)),
                            replace=False)
        for v in sample:
            path = reconstruct_path(parents, src, int(v))
            assert path[0] == src and path[-1] == v
            assert verify_path(g, path, result.labels, problem)

    def test_source_has_no_parent(self, social):
        g, src = social
        result = run_with_parents(g, src, "bfs")
        assert result.extras["parents"][src] == NO_PARENT

    def test_unreached_vertices_have_no_parent(self, social):
        g, src = social
        result = run_with_parents(g, src, "bfs")
        parents = result.extras["parents"]
        unreached = np.isinf(result.labels)
        assert np.all(parents[unreached] == NO_PARENT)

    def test_disabled_by_default(self, social):
        g, src = social
        result = EtaGraph(g).bfs(src)
        assert result.extras["parents"] is None

    def test_bfs_path_length_equals_level(self, social):
        g, src = social
        result = run_with_parents(g, src, "bfs")
        parents = result.extras["parents"]
        v = int(np.flatnonzero(result.labels == 2)[0])
        path = reconstruct_path(parents, src, v)
        assert len(path) == 3

    @given(seed=st.integers(0, 10))
    @settings(max_examples=8, deadline=None)
    def test_sssp_paths_are_shortest(self, seed):
        g = attach_weights(generators.erdos_renyi(80, 500, seed=seed),
                           seed=seed)
        result = run_with_parents(g, 0, "sssp")
        parents = result.extras["parents"]
        reached = np.flatnonzero(np.isfinite(result.labels))[:10]
        for v in reached:
            if v == 0:
                continue
            path = reconstruct_path(parents, 0, int(v))
            assert verify_path(g, path, result.labels, "sssp")


class TestReconstructErrors:
    def test_unreached_target(self):
        parents = np.array([NO_PARENT, NO_PARENT])
        with pytest.raises(PathError, match="not reached"):
            reconstruct_path(parents, 0, 1)

    def test_cycle_detected(self):
        parents = np.array([1, 0])
        with pytest.raises(PathError, match="corrupt"):
            reconstruct_path(parents, 9, 0)  # source never reached

    def test_target_out_of_range(self):
        with pytest.raises(PathError):
            reconstruct_path(np.array([NO_PARENT]), 0, 5)

    def test_source_is_target(self):
        assert reconstruct_path(np.array([NO_PARENT]), 0, 0) == [0]

    def test_verify_rejects_nonsense(self, social):
        g, src = social
        labels = EtaGraph(g).bfs(src).labels
        assert not verify_path(g, [], labels, "bfs")
        # A "path" with a non-edge hop.
        non_neighbor = int(np.flatnonzero(
            ~np.isin(np.arange(g.num_vertices), g.neighbors(src))
        )[0])
        assert not verify_path(g, [src, non_neighbor], labels, "bfs")


class TestEarlyExit:
    def test_stops_before_full_traversal(self, social):
        g, src = social
        full = EtaGraph(g).bfs(src)
        near = int(np.flatnonzero(full.labels == 1)[0])
        early = EtaGraph(g).bfs(src, target=near)
        assert early.iterations < full.iterations
        assert early.labels[near] == 1
        assert early.extras["early_exit"]

    def test_target_label_correct(self, social):
        g, src = social
        full = EtaGraph(g).bfs(src)
        for level in (1, 2):
            candidates = np.flatnonzero(full.labels == level)
            if not len(candidates):
                continue
            t = int(candidates[-1])
            early = EtaGraph(g).bfs(src, target=t)
            assert early.labels[t] == level

    def test_rejected_for_weighted_problems(self, social):
        g, src = social
        with pytest.raises(ConfigError):
            EtaGraph(g)._engine.run("sssp", src, target=1)

    def test_target_out_of_range(self, social):
        g, src = social
        with pytest.raises(InvalidLaunchError):
            EtaGraph(g).bfs(src, target=g.num_vertices)

    def test_shortest_hop_path_api(self, social):
        g, src = social
        full = EtaGraph(g).bfs(src)
        v = int(np.flatnonzero(full.labels == 2)[0])
        path = EtaGraph(g).shortest_hop_path(src, v)
        assert path[0] == src and path[-1] == v
        assert len(path) == 3
