"""Shared fixtures: small deterministic graphs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.csr import CSRGraph
from repro.graph.weights import uniform_int_weights

# Differential/metamorphic fixtures (differential_runner, matrix_configs,
# differential_graphs, ...) live with the subsystem they exercise.
pytest_plugins = ("repro.testing.fixtures",)


@pytest.fixture
def tiny_graph() -> CSRGraph:
    """The paper's Fig. 3 example graph (6 vertices, skewed degrees).

    Vertex 1 has out-degree 6 (split into two shadow vertices at K=4),
    vertex 2 has out-degree 0, vertex 4 has out-degree 2.
    """
    edges = [
        (0, 1), (0, 2),
        (1, 0), (1, 2), (1, 3), (1, 4), (1, 5), (1, 2),  # dup dropped
        (3, 4),
        (4, 2), (4, 5),
        (5, 1),
    ]
    src, dst = map(np.array, zip(*edges))
    return CSRGraph.from_edges(src, dst, num_vertices=6)


@pytest.fixture
def skewed_graph() -> CSRGraph:
    """A small RMAT graph with a pronounced degree skew."""
    return generators.rmat(8, 2048, seed=3)


@pytest.fixture
def weighted_skewed_graph(skewed_graph) -> CSRGraph:
    return skewed_graph.with_weights(
        uniform_int_weights(skewed_graph.num_edges, seed=5)
    )


@pytest.fixture
def path10() -> CSRGraph:
    return generators.path_graph(10)


def random_graph(n: int, m: int, seed: int, weighted: bool = False) -> CSRGraph:
    """Helper (not a fixture) for parametrized randomized tests."""
    g = generators.erdos_renyi(n, m, seed=seed)
    if weighted:
        g = g.with_weights(uniform_int_weights(g.num_edges, seed=seed + 1))
    return g
