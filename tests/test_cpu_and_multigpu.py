"""Tests for the Ligra-like CPU baseline and the multi-GPU scaling model."""

import numpy as np
import pytest

from repro import EtaGraph
from repro.algorithms import cpu_reference
from repro.baselines import get_framework
from repro.baselines.cpu_ligra import CPUSpec, LigraLikeCPU, XEON_E5_2620
from repro.errors import ConfigError
from repro.gpu.multigpu import (
    multi_gpu_traversal,
    partition_ranges,
    scaling_sweep,
)
from repro.graph import generators
from repro.graph.weights import attach_weights


@pytest.fixture(scope="module")
def social():
    g = attach_weights(generators.rmat(11, 80_000, seed=71), seed=72)
    src = int(np.argmax(g.out_degrees()))
    return g, src


class TestCPUBaseline:
    def test_labels_correct(self, social):
        g, src = social
        r = LigraLikeCPU().run(g, "sssp", src)
        assert np.allclose(r.labels, cpu_reference.sssp_distances(g, src))

    def test_registered(self):
        assert get_framework("cpu-ligra").name == "cpu-ligra"

    def test_no_transfer_and_no_device_footprint(self, social):
        g, src = social
        r = LigraLikeCPU().run(g, "bfs", src)
        assert r.total_ms == r.kernel_ms  # host memory: nothing to copy
        assert r.device_bytes == 0

    def test_gpu_advantage_grows_with_scale(self):
        """The paper's Section I claim, executable: a tuned GPU framework
        is at least comparable to a shared-memory CPU system, and its
        kernel advantage grows with graph size (the CPU wins only while
        the problem fits its caches / the GPU is overhead-bound)."""
        ratios = []
        for scale, edges in ((11, 80_000), (13, 400_000), (15, 2_000_000)):
            g = generators.rmat(scale, edges, seed=71)
            src = int(np.argmax(g.out_degrees()))
            cpu = LigraLikeCPU().run(g, "bfs", src)
            gpu = EtaGraph(g).bfs(src)
            assert np.array_equal(gpu.labels, cpu.labels)
            ratios.append(cpu.kernel_ms / gpu.kernel_ms)
        assert ratios[-1] > 1.5  # GPU clearly ahead at scale
        assert ratios[-1] > ratios[0]  # and the gap widens

    def test_cpu_wins_tiny_graphs(self):
        """No transfer + no launch overhead: the CPU should win when the
        graph is a few hundred edges."""
        g = generators.rmat(6, 300, seed=3)
        cpu = LigraLikeCPU().run(g, "bfs", 0)
        gpu = EtaGraph(g).bfs(0)
        assert cpu.total_ms < gpu.total_ms

    def test_custom_cpu_spec(self, social):
        g, src = social
        slow_cpu = CPUSpec(num_cores=2, dram_bandwidth_gbps=20.0)
        slow = LigraLikeCPU(cpu=slow_cpu).run(g, "bfs", src)
        fast = LigraLikeCPU(cpu=XEON_E5_2620).run(g, "bfs", src)
        assert fast.kernel_ms < slow.kernel_ms


class TestMultiGPU:
    def test_partition_ranges(self):
        bounds = partition_ranges(100, 4)
        assert bounds[0] == 0 and bounds[-1] == 100
        assert len(bounds) == 5
        assert np.all(np.diff(bounds) > 0)

    def test_labels_correct_any_gpu_count(self, social):
        g, src = social
        ref = cpu_reference.bfs_levels(g, src)
        for gpus in (1, 3, 8):
            r = multi_gpu_traversal(g, src, num_gpus=gpus)
            assert np.array_equal(r.labels, ref), gpus

    def test_single_gpu_has_no_comm(self, social):
        g, src = social
        r = multi_gpu_traversal(g, src, num_gpus=1)
        assert r.comm_ms == 0.0
        assert r.comm_bytes == 0.0

    def test_comm_grows_with_gpu_count(self, social):
        g, src = social
        r2 = multi_gpu_traversal(g, src, num_gpus=2)
        r8 = multi_gpu_traversal(g, src, num_gpus=8)
        assert r8.comm_bytes > r2.comm_bytes
        assert r8.comm_ms > r2.comm_ms

    def test_scaling_saturates(self, social):
        """The introduction's claim: PCIe communication overhead limits
        multi-GPU scaling — speedup is sublinear and flattens."""
        g, src = social
        sweep = scaling_sweep(g, src, gpu_counts=[1, 2, 4, 8, 16])
        t = {g_: r.total_ms for g_, r in sweep.items()}
        speedup_16 = t[1] / t[16]
        assert speedup_16 < 8.0  # nowhere near linear
        # Communication share grows with GPU count.
        assert sweep[16].comm_fraction > sweep[2].comm_fraction

    def test_kernel_time_shrinks_with_gpus(self, social):
        g, src = social
        r1 = multi_gpu_traversal(g, src, num_gpus=1)
        r4 = multi_gpu_traversal(g, src, num_gpus=4)
        assert r4.kernel_ms < r1.kernel_ms

    def test_invalid_gpu_count(self, social):
        g, src = social
        with pytest.raises(ConfigError):
            multi_gpu_traversal(g, src, num_gpus=0)

    def test_weighted_problem(self, social):
        g, src = social
        r = multi_gpu_traversal(g, src, num_gpus=2, problem="sssp")
        assert np.allclose(r.labels, cpu_reference.sssp_distances(g, src))
