"""Property tests: UDC shadow slices partition adjacency and respect K.

The Definition 3 invariants as Hypothesis properties over random degree
distributions — explicitly including degree 0, degree exactly K, and
degree K + 1 (the "barely two slices" boundary).
"""

import numpy as np
from hypothesis import given, settings

from repro.core.udc import ShadowTable, degree_cut
from repro.errors import InvariantViolation
from repro.testing.invariants import check_udc_partition
from repro.testing.strategies import degree_sequences


@given(degree_sequences())
@settings(max_examples=120, deadline=None)
def test_degree_cut_partitions_adjacency(seq):
    """For any degree sequence, every active vertex's slices exactly
    partition its adjacency and no slice exceeds K."""
    offsets, k = seq
    n = len(offsets) - 1
    active = np.arange(n, dtype=np.int64)
    shadows = degree_cut(active, offsets, k)
    check_udc_partition(shadows, active, offsets, k)
    if len(shadows):
        assert shadows.degrees.max() <= k


@given(degree_sequences())
@settings(max_examples=60, deadline=None)
def test_degree_cut_on_subset(seq):
    """The partition property also holds for strict active subsets."""
    offsets, k = seq
    n = len(offsets) - 1
    active = np.arange(0, n, 2, dtype=np.int64)  # every other vertex
    shadows = degree_cut(active, offsets, k)
    check_udc_partition(shadows, active, offsets, k)


@given(degree_sequences())
@settings(max_examples=60, deadline=None)
def test_shadow_table_select_matches_degree_cut(seq):
    """Out-of-core selection returns the same slices as the on-the-fly cut."""
    offsets, k = seq
    n = len(offsets) - 1
    table = ShadowTable(offsets, k)
    active = np.arange(n, dtype=np.int64)
    selected = table.select(active)
    check_udc_partition(selected, active, offsets, k)
    fresh = degree_cut(active, offsets, k)
    assert np.array_equal(selected.ids, fresh.ids)
    assert np.array_equal(selected.starts, fresh.starts)
    assert np.array_equal(selected.degrees, fresh.degrees)


@given(degree_sequences())
@settings(max_examples=60, deadline=None)
def test_shadow_count_formula(seq):
    """Each vertex contributes exactly ceil(degree / K) shadow vertices."""
    offsets, k = seq
    n = len(offsets) - 1
    active = np.arange(n, dtype=np.int64)
    shadows = degree_cut(active, offsets, k)
    degrees = offsets[1:] - offsets[:-1]
    assert len(shadows) == int((-(-degrees // k)).sum())
    counts = np.bincount(shadows.ids.astype(np.int64), minlength=n) \
        if len(shadows) else np.zeros(n, dtype=np.int64)
    assert np.array_equal(counts, -(-degrees // k))


def test_degree_zero_and_exactly_k_edges():
    """The two boundary degrees the paper's Fig. 3 walks through."""
    k = 4
    offsets = np.array([0, 0, 4, 9, 9], dtype=np.int64)  # degrees 0,4,5,0
    active = np.arange(4, dtype=np.int64)
    shadows = degree_cut(active, offsets, k)
    check_udc_partition(shadows, active, offsets, k)
    assert len(shadows) == 1 + 2  # degree 4 -> one slice; 5 -> two
    assert list(shadows.ids) == [1, 2, 2]
    assert list(shadows.degrees) == [4, 4, 1]


def test_partition_checker_rejects_corrupt_slices():
    """The checker itself must catch broken cuts (meta-test)."""
    offsets = np.array([0, 6], dtype=np.int64)
    active = np.array([0], dtype=np.int64)
    shadows = degree_cut(active, offsets, 4)
    # Corrupt: shift the second slice start so coverage leaves a gap.
    bad = type(shadows)(
        ids=shadows.ids,
        starts=shadows.starts + np.array([0, 1]),
        degrees=shadows.degrees,
    )
    try:
        check_udc_partition(bad, active, offsets, 4)
    except InvariantViolation:
        pass
    else:
        raise AssertionError("corrupt slices were not detected")
