"""Tests for direction-optimized BFS."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import EtaGraph
from repro.core.dobfs import direction_optimized_bfs
from repro.errors import ConfigError, InvalidLaunchError
from repro.graph import generators


@pytest.fixture(scope="module")
def social():
    g = generators.rmat(11, 60_000, seed=13)
    src = int(np.argmax(g.out_degrees()))
    return g, src


class TestCorrectness:
    def test_matches_plain_bfs(self, social):
        g, src = social
        plain = EtaGraph(g).bfs(src).labels
        hybrid = direction_optimized_bfs(g, src).labels
        assert np.array_equal(plain, hybrid)

    @given(seed=st.integers(0, 20), alpha=st.sampled_from([2.0, 15.0, 100.0]))
    @settings(max_examples=12, deadline=None)
    def test_matches_for_any_switch_point(self, seed, alpha):
        g = generators.erdos_renyi(300, 3000, seed=seed)
        plain = EtaGraph(g).bfs(0).labels
        hybrid = direction_optimized_bfs(g, 0, alpha=alpha).labels
        assert np.array_equal(plain, hybrid)

    def test_path_graph_never_pulls(self):
        g = generators.path_graph(40)
        result = direction_optimized_bfs(g, 0)
        assert result.pull_iterations == 0
        assert list(result.labels) == list(range(40))

    def test_dense_expansion_pulls(self, social):
        g, src = social
        result = direction_optimized_bfs(g, src, alpha=50.0)
        assert result.pull_iterations > 0
        assert len(result.directions) == result.iterations

    def test_invalid_params_rejected(self, social):
        g, src = social
        with pytest.raises(ConfigError):
            direction_optimized_bfs(g, src, alpha=0)
        with pytest.raises(InvalidLaunchError):
            direction_optimized_bfs(g, g.num_vertices + 1)


class TestCostShape:
    def test_pull_saves_kernel_time_on_skewed_graphs(self, social):
        g, src = social
        plain = EtaGraph(g).bfs(src)
        hybrid = direction_optimized_bfs(g, src)
        assert hybrid.kernel_ms < plain.kernel_ms

    def test_csc_costs_device_memory(self, social):
        g, src = social
        hybrid = direction_optimized_bfs(g, src)
        # CSR + CSC + labels: roughly double the topology footprint.
        assert hybrid.device_bytes > 2 * g.nbytes

    def test_forced_push_never_pulls(self, social):
        g, src = social
        # Beamer's alpha: pull when frontier edges > |E| / alpha, so a
        # tiny alpha makes the threshold unreachable.
        result = direction_optimized_bfs(g, src, alpha=1e-6)
        assert result.pull_iterations == 0
