"""Tests for the invariant checkers, the inline engine flag, the fuzz
driver and the ``python -m repro.testing`` CLI."""

from dataclasses import replace

import numpy as np
import pytest

from repro.algorithms.base import get_problem
from repro.core.config import EtaGraphConfig, MemoryMode
from repro.core.engine import EtaGraphEngine
from repro.errors import InvariantViolation
from repro.testing.invariants import (
    check_stats,
    check_timeline,
    check_traversal_result,
)


def _run(graph, problem="bfs", source=0, **cfg):
    config = EtaGraphConfig(check_invariants=True, **cfg)
    return EtaGraphEngine(graph, config).run(get_problem(problem), source)


class TestInlineEngineFlag:
    @pytest.mark.parametrize("mode", list(MemoryMode))
    def test_real_runs_pass_all_checks(self, skewed_graph, mode):
        result = _run(skewed_graph, memory_mode=mode)
        # The engine already checked inline; re-check the final result
        # explicitly with the label cross-check enabled.
        check_traversal_result(result, problem=get_problem("bfs"))

    def test_weighted_run_passes(self, weighted_skewed_graph):
        result = _run(weighted_skewed_graph, "sssp", degree_limit=4)
        check_traversal_result(result, problem=get_problem("sssp"))

    def test_flag_does_not_change_labels(self, skewed_graph):
        on = _run(skewed_graph)
        off = EtaGraphEngine(skewed_graph, EtaGraphConfig()).run(
            get_problem("bfs"), 0
        )
        assert np.array_equal(on.labels, off.labels)

    def test_early_exit_run_still_checked(self, path10):
        """Point-to-point queries stop early; the stats/label cross-check
        is skipped but structural checks still run."""
        config = EtaGraphConfig(check_invariants=True)
        result = EtaGraphEngine(path10, config).run(
            get_problem("bfs"), 0, target=5
        )
        assert result.labels[5] == 5.0


class TestCheckersRejectCorruptData:
    def test_overlapping_compute_intervals(self, skewed_graph):
        result = _run(skewed_graph)
        timeline = result.timeline
        iv = next(i for i in timeline.intervals if i.kind == "compute")
        clone = replace(iv, start_ms=iv.start_ms + 1e-9)
        timeline.intervals.append(clone)
        with pytest.raises(InvariantViolation, match="overlap"):
            check_timeline(timeline)

    def test_negative_interval(self, skewed_graph):
        result = _run(skewed_graph)
        iv = result.timeline.intervals[0]
        result.timeline.intervals[0] = replace(
            iv, end_ms=iv.start_ms - 1.0
        )
        with pytest.raises(InvariantViolation, match="ends before"):
            check_timeline(result.timeline)

    def test_stats_overcount_visited(self, skewed_graph):
        result = _run(skewed_graph)
        stats = result.stats
        # Claim a seed frontier larger than the graph itself.
        stats.seed_count = stats.num_vertices + 5
        with pytest.raises(InvariantViolation, match="visited"):
            check_stats(stats)

    def test_stats_update_overflow(self, skewed_graph):
        result = _run(skewed_graph)
        s = result.stats.iterations[0]
        result.stats.iterations[0] = replace(s, updates=s.edges_scanned + 1)
        with pytest.raises(InvariantViolation, match="updates"):
            check_stats(result.stats)

    def test_edges_exceed_shadow_budget(self, skewed_graph):
        result = _run(skewed_graph, degree_limit=4)
        s = result.stats.iterations[0]
        result.stats.iterations[0] = replace(
            s, edges_scanned=s.shadow_vertices * 4 + 1, updates=0
        )
        with pytest.raises(InvariantViolation, match="shadow vertices at K"):
            check_stats(result.stats, degree_limit=4)

    def test_label_stats_cross_check(self, skewed_graph):
        result = _run(skewed_graph)
        # Un-reach a reached non-source vertex (the source is always
        # counted as reached regardless of its label).
        reached = np.isfinite(result.labels)
        reached[0] = False
        result.labels[np.flatnonzero(reached)[0]] = np.inf
        with pytest.raises(InvariantViolation, match="labels are reached"):
            check_traversal_result(result, problem=get_problem("bfs"))


class TestFuzzDriver:
    def test_small_sweep_is_green(self):
        from repro.testing import run_fuzz

        report = run_fuzz(max_cases=12, seed=123)
        assert report.ok, report.summary()
        assert report.cases == 12
        # All four problems rotated through.
        assert set(report.cases_per_problem) == {"bfs", "sssp", "sswp", "cc"}
        assert report.engine_runs >= 12 * 7
        assert report.metamorphic_checks > 0
        assert "12 differential cases" in report.summary()

    def test_time_budget_stops_sweep(self):
        from repro.testing import run_fuzz

        report = run_fuzz(max_seconds=0.0, seed=1)
        assert report.cases == 0
        assert report.ok

    def test_failures_carry_replay_coordinates(self):
        from repro.testing import run_fuzz

        report = run_fuzz(max_cases=2, seed=7, baselines=("gunrock",))
        assert report.ok
        report.failures.append("case 1: synthetic")
        assert not report.ok
        assert "FAILURES" in report.summary()
        assert "case 1" in report.summary()


class TestCLI:
    def test_green_sweep_exits_zero(self, capsys):
        from repro.testing.__main__ import main

        rc = main(["--cases", "6", "--seed", "3", "-q",
                   "--baselines", "gunrock", "tigr"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "6 differential cases" in out
        assert "no invariant violations" in out

    def test_no_metamorphic_flag(self, capsys):
        from repro.testing.__main__ import main

        rc = main(["--cases", "4", "-q", "--no-metamorphic",
                   "--baselines", "gunrock"])
        assert rc == 0
        assert "0 metamorphic checks" in capsys.readouterr().out

    def test_bad_problem_rejected(self):
        from repro.testing.__main__ import main

        with pytest.raises(SystemExit):
            main(["--problems", "pagerank"])
