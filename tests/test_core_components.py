"""Tests for the SMP planner, frontier buffers, config and stats."""

import numpy as np
import pytest

from repro.core.config import EtaGraphConfig, MemoryMode
from repro.core.frontier import FrontierBuffers
from repro.core.smp import plan_prefetch
from repro.core.stats import IterationStats, TraversalStats
from repro.core.udc import degree_cut
from repro.errors import ConfigError, InvalidLaunchError
from repro.gpu.device import GTX_1080TI
from repro.gpu.memory import DeviceMemory


class TestSMPPlanner:
    def test_bins(self, tiny_graph):
        # K=4: vertex 1 splits into degree-4 (full bin) + degree-1 shadows.
        shadows = degree_cut(np.array([1, 4]), tiny_graph.row_offsets, 4)
        plan = plan_prefetch(shadows, tiny_graph.row_offsets, 4)
        assert plan.full_bin_count == 1
        assert plan.words_per_thread == 4

    def test_overfetch_clamped_to_owner(self, tiny_graph):
        # Vertex 4 has degree 2 and sits at the array end region; the K-1
        # plan (3 words) must be clamped to its adjacency end.
        shadows = degree_cut(np.array([4]), tiny_graph.row_offsets, 4)
        plan = plan_prefetch(shadows, tiny_graph.row_offsets, 4)
        owner_end = tiny_graph.row_offsets[5]
        assert plan.planned_words[0] <= owner_end - shadows.starts[0]
        assert plan.planned_words[0] >= shadows.degrees[0]

    def test_overfetch_words(self, skewed_graph):
        shadows = degree_cut(
            np.arange(skewed_graph.num_vertices), skewed_graph.row_offsets, 8
        )
        plan = plan_prefetch(shadows, skewed_graph.row_offsets, 8)
        over = plan.overfetch_words(shadows.degrees)
        assert over >= 0
        assert plan.total_prefetch_words == shadows.total_edges + over

    def test_empty_plan(self, skewed_graph):
        shadows = degree_cut(np.array([], dtype=np.int64),
                             skewed_graph.row_offsets, 8)
        plan = plan_prefetch(shadows, skewed_graph.row_offsets, 8)
        assert plan.total_prefetch_words == 0
        assert plan.full_bin_count == 0

    def test_k1(self, skewed_graph):
        shadows = degree_cut(np.array([0, 1, 2]), skewed_graph.row_offsets, 1)
        plan = plan_prefetch(shadows, skewed_graph.row_offsets, 1)
        assert np.all(plan.planned_words == 1)


class TestFrontierBuffers:
    @pytest.fixture
    def bufs(self):
        mem = DeviceMemory(GTX_1080TI)
        return FrontierBuffers(mem, num_vertices=100, num_edges=1000,
                               degree_limit=10)

    def test_initial_empty(self, bufs):
        assert bufs.is_empty

    def test_seed(self, bufs):
        bufs.seed(5)
        assert list(bufs.active) == [5]

    def test_seed_out_of_range(self, bufs):
        with pytest.raises(InvalidLaunchError):
            bufs.seed(100)

    def test_publish_and_reset(self, bufs):
        bufs.publish(np.array([1, 2, 3]))
        assert len(bufs.active) == 3
        bufs.reset()
        assert bufs.is_empty

    def test_publish_too_large_rejected(self, bufs):
        with pytest.raises(InvalidLaunchError):
            bufs.publish(np.arange(101))

    def test_vas_capacity_is_worst_case(self, bufs):
        assert bufs.capacity_shadows == 100 + 1000 // 10 + 1
        assert len(bufs.virt_act_set.data) == 3 * bufs.capacity_shadows

    def test_device_bytes_accounted(self, bufs):
        expected = 100 * 4 + 3 * bufs.capacity_shadows * 4 + 100
        assert bufs.device_bytes() == expected


class TestConfig:
    def test_defaults(self):
        cfg = EtaGraphConfig()
        assert cfg.degree_limit == 32
        assert cfg.smp
        assert cfg.memory_mode is MemoryMode.UM_PREFETCH

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError):
            EtaGraphConfig(degree_limit=0)
        with pytest.raises(ConfigError):
            EtaGraphConfig(threads_per_block=16)
        with pytest.raises(ConfigError):
            EtaGraphConfig(max_iterations=0)
        with pytest.raises(ConfigError):
            EtaGraphConfig(overlap_efficiency=1.5)

    def test_without_smp(self):
        assert not EtaGraphConfig().without_smp().smp

    def test_with_memory_mode_string(self):
        cfg = EtaGraphConfig().with_memory_mode("device")
        assert cfg.memory_mode is MemoryMode.DEVICE
        assert not cfg.memory_mode.uses_um

    def test_uses_um(self):
        assert MemoryMode.UM_PREFETCH.uses_um
        assert MemoryMode.UM_ON_DEMAND.uses_um
        assert not MemoryMode.DEVICE.uses_um


def _iter(i, active, newly, t, **kw):
    defaults = dict(
        index=i, active_vertices=active, shadow_vertices=active,
        edges_scanned=active * 3, updates=newly, newly_visited=newly,
        kernel_ms=0.5, transform_ms=0.1, transfer_ms=0.0, elapsed_end_ms=t,
    )
    defaults.update(kw)
    return IterationStats(**defaults)


class TestStats:
    def test_activation_fraction(self):
        stats = TraversalStats(num_vertices=10)
        stats.record(_iter(0, 1, 3, 1.0))
        stats.record(_iter(1, 3, 4, 2.0))
        # 1 (source) + 3 + 4 visited of 10.
        assert stats.activation_fraction() == pytest.approx(0.8)

    def test_active_per_iteration(self):
        stats = TraversalStats(num_vertices=10)
        stats.record(_iter(0, 1, 2, 1.0))
        stats.record(_iter(1, 2, 0, 2.0))
        assert list(stats.active_per_iteration()) == [1, 2]

    def test_cumulative_fraction_monotone(self):
        stats = TraversalStats(num_vertices=100)
        for i, n in enumerate([1, 5, 20, 10, 2]):
            stats.record(_iter(i, n, n, float(i)))
        cum = stats.cumulative_active_fraction()
        assert np.all(np.diff(cum) >= 0)
        assert cum[-1] == pytest.approx(1.0)

    def test_visited_over_time(self):
        stats = TraversalStats(num_vertices=10)
        stats.record(_iter(0, 1, 2, 1.5))
        series = stats.visited_over_time()
        assert series == [(1.5, 3)]

    def test_linearity_of_linear_series(self):
        stats = TraversalStats(num_vertices=1000)
        for i in range(10):
            stats.record(_iter(i, 10, 10, float(i + 1)))
        assert stats.visited_growth_linearity() > 0.999

    def test_linearity_degenerate(self):
        stats = TraversalStats(num_vertices=10)
        assert stats.visited_growth_linearity() == 1.0

    def test_totals(self):
        stats = TraversalStats(num_vertices=10)
        stats.record(_iter(0, 1, 1, 1.0))
        stats.record(_iter(1, 1, 0, 2.0))
        assert stats.num_iterations == 2
        assert stats.total_edges_scanned == 6
        assert stats.total_visited == 2
