"""Tests for multi-source wave traversal (MSBFS).

The contract under test is the tentpole one: a bit-packed wave of up to
64 BFS sources produces, for every lane, labels **bit-identical** to a
sequential :meth:`EngineSession.query` from that source — across memory
modes, wave widths, ragged final waves, telemetry on/off, the
degradation ladder, and the serving frontend's request coalescer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import msbfs
from repro.core.config import EtaGraphConfig, MemoryMode
from repro.core.msbfs import WAVE_LANES, WaveResult, run_wave, wave_chunks
from repro.core.multi import run_batch
from repro.core.session import EngineSession
from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    InvalidLaunchError,
)
from repro.resilience import FaultPlan, FaultSpec, ResilientSession
from repro.serving import TenantQuota, TraversalService, VisitRequest
from repro.testing.differential import oracle_labels

ALL_MODES = (
    MemoryMode.DEVICE,
    MemoryMode.UM_PREFETCH,
    MemoryMode.UM_ON_DEMAND,
    MemoryMode.ZERO_COPY,
)


def _sequential_labels(graph, sources, config=None):
    with EngineSession(graph, config or EtaGraphConfig()) as session:
        return [session.query("bfs", int(s)).labels.copy() for s in sources]


def _assert_lanes_match(wave: WaveResult, expected: list[np.ndarray]):
    assert wave.width == len(expected)
    for lane, labels in enumerate(expected):
        assert wave.labels_for(lane).tobytes() == labels.tobytes(), \
            f"lane {lane} diverged"


# ----------------------------------------------------------------------
# Bit-identity with the sequential engine
# ----------------------------------------------------------------------


class TestWaveBitIdentity:
    @pytest.mark.parametrize("mode", ALL_MODES, ids=lambda m: m.value)
    def test_identical_across_memory_modes(self, skewed_graph, mode):
        config = EtaGraphConfig(memory_mode=mode)
        sources = list(range(0, 64, 2))  # 32 lanes
        expected = _sequential_labels(skewed_graph, sources, config)
        with EngineSession(skewed_graph, config) as session:
            wave = run_wave(session, np.array(sources))
        _assert_lanes_match(wave, expected)

    @pytest.mark.parametrize("width", [1, 32, 64])
    def test_identical_across_widths(self, skewed_graph, width):
        sources = list(range(width))
        expected = _sequential_labels(skewed_graph, sources)
        with EngineSession(skewed_graph) as session:
            wave = run_wave(session, np.array(sources))
        _assert_lanes_match(wave, expected)
        assert wave.width == width

    def test_duplicate_sources_share_levels(self, skewed_graph):
        sources = [5, 9, 5, 5]
        expected = _sequential_labels(skewed_graph, sources)
        with EngineSession(skewed_graph) as session:
            wave = run_wave(session, np.array(sources))
        _assert_lanes_match(wave, expected)

    def test_matches_cpu_oracle(self, skewed_graph):
        sources = [0, 17, 101, 255]
        with EngineSession(skewed_graph) as session:
            wave = run_wave(session, np.array(sources))
        for lane, s in enumerate(sources):
            assert np.array_equal(
                wave.labels_for(lane),
                oracle_labels(skewed_graph, "bfs", s),
            )

    def test_telemetry_does_not_change_labels_or_clocks(self, skewed_graph):
        """Telemetry must be pure observation: labels AND every
        simulated clock are bit-identical with spans on or off."""
        sources = np.arange(24)
        with EngineSession(
            skewed_graph, EtaGraphConfig(telemetry=False)
        ) as quiet:
            off = run_wave(quiet, sources)
        with EngineSession(
            skewed_graph, EtaGraphConfig(telemetry=True)
        ) as loud:
            on = run_wave(loud, sources)
        assert on.levels.tobytes() == off.levels.tobytes()
        for field in ("total_ms", "kernel_ms", "transfer_ms", "d2h_ms",
                      "setup_ms"):
            assert getattr(on, field).hex() == getattr(off, field).hex(), \
                f"{field} diverged under telemetry"
        assert on.iterations == off.iterations
        assert on.trace is not None and off.trace is None

    def test_wave_memo_reuse_stays_exact(self, skewed_graph):
        """An identical second wave replays identical frontiers: it
        memo-hits heavily, collides never, and stays bit-identical."""
        sources = np.arange(16)
        with EngineSession(skewed_graph) as session:
            first = run_wave(session, sources)
            hits_before = session.memo_hits
            second = run_wave(session, sources)
            assert session.memo_hits > hits_before
            assert session.memo_collisions == 0
        assert first.levels.tobytes() == second.levels.tobytes()

    def test_wave_and_sequential_memo_do_not_mix(self, skewed_graph):
        """Wave memo entries are keyed apart from sequential ones
        (their trace plans gather 8-byte masks): interleaving both on
        one session must stay exact in both directions."""
        with EngineSession(skewed_graph) as session:
            seq_before = session.query("bfs", 0).labels.copy()
            wave = run_wave(session, np.array([0, 1, 2]))
            seq_after = session.query("bfs", 0).labels
            assert np.array_equal(seq_before, seq_after)
        expected = _sequential_labels(skewed_graph, [0, 1, 2])
        _assert_lanes_match(wave, expected)


# ----------------------------------------------------------------------
# WaveResult surface and validation
# ----------------------------------------------------------------------


class TestWaveSurface:
    def test_to_results_shares_cost_evenly(self, skewed_graph):
        sources = np.arange(8)
        with EngineSession(skewed_graph) as session:
            wave = run_wave(session, sources)
        results = wave.to_results()
        assert len(results) == 8
        for lane, r in enumerate(results):
            assert r.extras["wave"] is True
            assert r.extras["wave_lane"] == lane
            assert r.extras["wave_width"] == 8
            assert np.array_equal(r.labels, wave.labels_for(lane))
        total_share = sum(r.query_ms for r in results)
        assert total_share == pytest.approx(wave.query_ms)

    def test_queries_served_counts_lanes(self, skewed_graph):
        with EngineSession(skewed_graph) as session:
            run_wave(session, np.arange(5))
            assert session.queries_served == 5

    def test_source_validation(self, skewed_graph):
        with EngineSession(skewed_graph) as session:
            with pytest.raises(ConfigError):
                run_wave(session, np.array([], dtype=np.int64))
            with pytest.raises(ConfigError):
                run_wave(session, np.arange(WAVE_LANES + 1))
            with pytest.raises(InvalidLaunchError):
                run_wave(session, np.array([skewed_graph.num_vertices]))
            with pytest.raises(InvalidLaunchError):
                run_wave(session, np.array([-1]))

    def test_wave_chunks_ragged(self):
        chunks = list(wave_chunks(np.arange(70), 32))
        assert [len(c) for c in chunks] == [32, 32, 6]
        assert np.array_equal(np.concatenate(chunks), np.arange(70))
        with pytest.raises(ConfigError):
            list(wave_chunks(np.arange(4), 0))
        with pytest.raises(ConfigError):
            list(wave_chunks(np.arange(4), WAVE_LANES + 1))


# ----------------------------------------------------------------------
# run_batch(strategy="wave")
# ----------------------------------------------------------------------


class TestWaveBatch:
    def test_wave_batch_matches_sequential_batch(self, skewed_graph):
        sources = list(range(40))
        seq = run_batch(skewed_graph, sources, "bfs")
        wave = run_batch(
            skewed_graph, sources, "bfs", strategy="wave", wave_width=16,
        )
        assert wave.strategy == "wave" and seq.strategy == "sequential"
        assert [len(w.sources) for w in wave.waves] == [16, 16, 8]
        assert len(wave.results) == len(seq.results) == 40
        for a, b in zip(wave.results, seq.results):
            assert a.labels.tobytes() == b.labels.tobytes()

    def test_wave_batch_is_cheaper(self, skewed_graph):
        """The headline: one expansion per iteration for the whole wave
        beats one per source on the simulated clock too."""
        sources = list(range(64))
        seq = run_batch(skewed_graph, sources, "bfs")
        wave = run_batch(skewed_graph, sources, "bfs", strategy="wave")
        assert wave.query_ms < seq.query_ms

    def test_wave_batch_on_warm_session(self, skewed_graph):
        with EngineSession(skewed_graph) as session:
            session.query("bfs", 0)
            batch = run_batch(
                skewed_graph, [1, 2, 3], "bfs",
                session=session, strategy="wave",
            )
            assert batch.shared_setup_ms == 0.0
        expected = _sequential_labels(skewed_graph, [1, 2, 3])
        for r, e in zip(batch.results, expected):
            assert np.array_equal(r.labels, e)

    def test_strategy_validation(self, skewed_graph):
        with pytest.raises(ConfigError):
            run_batch(skewed_graph, [0], "bfs", strategy="nope")
        with pytest.raises(ConfigError):
            run_batch(skewed_graph, [0], "sssp", strategy="wave")
        with pytest.raises(ConfigError):
            run_batch(skewed_graph, [0], "bfs", wave_width=8)


# ----------------------------------------------------------------------
# The degradation ladder under waves
# ----------------------------------------------------------------------


class TestResilientWave:
    def test_no_fault_wave_identity(self, skewed_graph):
        sources = np.arange(12)
        expected = _sequential_labels(skewed_graph, sources)
        with ResilientSession(skewed_graph) as rs:
            outcome = rs.run_wave(sources)
        assert outcome.num_attempts == 1 and not outcome.degraded
        assert outcome.final_placement == "um_prefetch"
        _assert_lanes_match(outcome.result, expected)

    def test_wave_rides_the_ladder_on_oom(self, skewed_graph):
        """Chaos: an injected allocation OOM demotes the whole wave a
        rung; every lane must still match the CPU oracle."""
        sources = [0, 3, 7, 11]
        rs = ResilientSession(
            skewed_graph,
            fault_plan=FaultPlan(
                specs=(FaultSpec("alloc_oom", at=0),), seed=7,
            ),
        )
        with rs:
            outcome = rs.run_wave(np.array(sources))
        assert outcome.degraded
        assert outcome.final_placement != rs.entry_rung
        assert len(outcome.faults_seen) >= 1
        for lane, s in enumerate(sources):
            assert np.array_equal(
                outcome.result.labels_for(lane),
                oracle_labels(skewed_graph, "bfs", s),
            )

    def test_transient_fault_retries_same_rung(self, skewed_graph):
        rs = ResilientSession(
            skewed_graph,
            fault_plan=FaultPlan(
                specs=(FaultSpec("transfer_fault", at=0),), seed=5,
            ),
        )
        with rs:
            outcome = rs.run_wave(np.arange(4))
        assert outcome.retried and not outcome.degraded
        expected = _sequential_labels(skewed_graph, range(4))
        _assert_lanes_match(outcome.result, expected)

    def test_iteration_budget_maps_to_deadline_error(self, skewed_graph):
        from repro.resilience import RetryPolicy

        with ResilientSession(
            skewed_graph, policy=RetryPolicy(max_iterations=1),
        ) as rs:
            with pytest.raises(DeadlineExceededError):
                rs.run_wave(np.arange(4))


# ----------------------------------------------------------------------
# Serving-layer wave coalescing
# ----------------------------------------------------------------------


class TestServingWaves:
    QUOTA = {"t": TenantQuota(max_pending=64)}

    def _requests(self, n, **kwargs):
        return [
            VisitRequest(problem="bfs", source=i, tenant="t", **kwargs)
            for i in range(n)
        ]

    def test_coalesced_equals_plain_service(self, skewed_graph):
        requests = self._requests(10)
        with TraversalService(
            skewed_graph, quotas=self.QUOTA
        ) as plain:
            baseline = plain.serve(requests)
        with TraversalService(
            skewed_graph, quotas=self.QUOTA, wave_width=8,
        ) as waved:
            coalesced = waved.serve(requests)
        assert len(baseline) == len(coalesced) == 10
        for p, c in zip(baseline, coalesced):
            assert p.ok and c.ok
            assert p.value.tobytes() == c.value.tobytes()

    def test_wave_metadata_on_responses(self, skewed_graph):
        with TraversalService(
            skewed_graph, quotas=self.QUOTA, wave_width=4,
        ) as service:
            responses = service.serve(self._requests(4))
        for r in responses:
            assert r.ok
            assert r.result.extras["wave"] is True
            assert r.result.extras["wave_width"] == 4
        # Coalesced lanes finish together on one worker.
        assert len({r.finish_ms for r in responses}) == 1
        assert len({r.worker for r in responses}) == 1

    def test_ineligible_requests_stay_sequential(self, skewed_graph):
        """Targeted visits (early exit) can't share a wave; they must
        still be served, alone, with exact labels."""
        requests = [
            VisitRequest(problem="bfs", source=0, tenant="t", target=5),
            VisitRequest(problem="bfs", source=1, tenant="t"),
            VisitRequest(problem="bfs", source=2, tenant="t"),
        ]
        with TraversalService(
            skewed_graph, quotas=self.QUOTA, wave_width=8,
        ) as service:
            responses = service.serve(requests)
        assert all(r.ok for r in responses)
        assert "wave" not in (responses[0].result.extras or {})

    def test_resilient_pool_waves_stay_exact(self, skewed_graph):
        requests = self._requests(6)
        with TraversalService(
            skewed_graph, quotas=self.QUOTA, wave_width=8,
            resilient=True,
        ) as service:
            responses = service.serve(requests)
        for i, r in enumerate(responses):
            assert r.ok
            assert r.placement != ""
            assert np.array_equal(
                r.value, oracle_labels(skewed_graph, "bfs", i)
            )

    def test_wave_width_validation(self, skewed_graph):
        with pytest.raises(ConfigError):
            TraversalService(skewed_graph, wave_width=1)
        with pytest.raises(ConfigError):
            TraversalService(skewed_graph, wave_width=WAVE_LANES + 1)


# ----------------------------------------------------------------------
# Differential engine
# ----------------------------------------------------------------------


class TestDifferentialEngine:
    def test_msbfs_engine_registered_and_exact(self):
        from repro.graph import generators
        from repro.testing.differential import (
            EXTRA_ENGINE_FACTORIES, run_differential_case,
        )

        assert "etagraph-msbfs" in EXTRA_ENGINE_FACTORIES
        g = generators.rmat(6, 400, seed=5)
        factory = EXTRA_ENGINE_FACTORIES["etagraph-msbfs"]
        report = run_differential_case(
            g, "bfs", 3, baselines=(),
            extra_engines={"etagraph-msbfs": factory()},
        )
        assert report.ok, report.summary()
        assert "etagraph-msbfs" in {e.engine for e in report.engines}
