"""Round-trip tests for text, Galois-binary and npz graph I/O."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import generators, io
from repro.graph.csr import CSRGraph
from repro.graph.weights import uniform_int_weights


@pytest.fixture
def graph():
    return generators.rmat(7, 1500, seed=21)


@pytest.fixture
def weighted(graph):
    return graph.with_weights(uniform_int_weights(graph.num_edges, seed=22))


class TestTextEdgeList:
    def test_roundtrip(self, graph, tmp_path):
        p = tmp_path / "g.txt"
        io.save_edgelist_text(graph, p)
        assert io.load_edgelist_text(p) == graph

    def test_roundtrip_weighted(self, weighted, tmp_path):
        p = tmp_path / "g.txt"
        io.save_edgelist_text(weighted, p)
        loaded = io.load_edgelist_text(p, weighted=True)
        assert loaded == weighted

    def test_comments_ignored(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# header\n0 1\n# mid comment\n1 2\n")
        g = io.load_edgelist_text(p)
        assert g.num_edges == 2

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.txt"
        p.write_text("# nothing\n")
        g = io.load_edgelist_text(p)
        assert g.num_vertices == 0 and g.num_edges == 0

    def test_missing_weight_column_rejected(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n")
        with pytest.raises(GraphFormatError):
            io.load_edgelist_text(p, weighted=True)

    def test_garbage_rejected(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 hello\n")
        with pytest.raises(GraphFormatError):
            io.load_edgelist_text(p)


class TestGaloisBinary:
    def test_roundtrip(self, graph, tmp_path):
        p = tmp_path / "g.gr"
        io.save_galois_binary(graph, p)
        assert io.load_galois_binary(p) == graph

    def test_roundtrip_weighted(self, weighted, tmp_path):
        p = tmp_path / "g.gr"
        io.save_galois_binary(weighted, p)
        loaded = io.load_galois_binary(p)
        assert loaded == weighted
        assert loaded.is_weighted

    def test_bad_magic_rejected(self, tmp_path):
        p = tmp_path / "bad.gr"
        p.write_bytes(b"\x00" * 64)
        with pytest.raises(GraphFormatError, match="magic"):
            io.load_galois_binary(p)

    def test_truncated_header_rejected(self, tmp_path):
        p = tmp_path / "trunc.gr"
        p.write_bytes(b"\x01\x02")
        with pytest.raises(GraphFormatError, match="truncated"):
            io.load_galois_binary(p)

    def test_truncated_body_rejected(self, graph, tmp_path):
        p = tmp_path / "g.gr"
        io.save_galois_binary(graph, p)
        raw = p.read_bytes()
        p.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(GraphFormatError, match="truncated"):
            io.load_galois_binary(p)

    def test_empty_graph_roundtrip(self, tmp_path):
        g = CSRGraph(np.zeros(1, dtype=np.int32), np.empty(0, dtype=np.int32))
        p = tmp_path / "empty.gr"
        io.save_galois_binary(g, p)
        loaded = io.load_galois_binary(p)
        assert loaded.num_vertices == 0 and loaded.num_edges == 0


class TestNpz:
    def test_roundtrip(self, weighted, tmp_path):
        p = tmp_path / "g.npz"
        io.save_npz(weighted, p)
        assert io.load_npz(p) == weighted

    def test_unweighted_roundtrip(self, graph, tmp_path):
        p = tmp_path / "g.npz"
        io.save_npz(graph, p)
        loaded = io.load_npz(p)
        assert loaded == graph
        assert not loaded.is_weighted


class TestDatasets:
    def test_registry_lists_all_paper_datasets(self):
        from repro.graph import datasets
        # The registry is the paper's Table II datasets plus the
        # raised-scale out-of-core tier (kept out of ALL_DATASETS).
        assert set(datasets.ALL_DATASETS) | set(datasets.RAISED_DATASETS) \
            == set(datasets._REGISTRY)
        assert len(datasets.ALL_DATASETS) == 7
        assert not set(datasets.ALL_DATASETS) & set(datasets.RAISED_DATASETS)

    def test_unknown_dataset_rejected(self):
        from repro.graph import datasets
        from repro.errors import DatasetError
        with pytest.raises(DatasetError):
            datasets.get_spec("no-such-graph")

    def test_load_uses_cache(self, tmp_path, monkeypatch):
        from repro.graph import datasets
        # Substitute a tiny builder so the test stays fast.
        spec = datasets.DatasetSpec(
            name="slashdot",
            kind="social",
            paper=datasets.SLASHDOT.paper,
            builder=lambda: generators.rmat(6, 300, seed=1),
        )
        monkeypatch.setitem(datasets._REGISTRY, "slashdot", spec)
        g1, s1 = datasets.load("slashdot", cache_dir=tmp_path)
        assert (tmp_path / "slashdot.npz").exists()
        g2, s2 = datasets.load("slashdot", cache_dir=tmp_path)
        assert g1 == g2 and s1 == s2

    def test_weighted_load_is_deterministic(self, tmp_path, monkeypatch):
        from repro.graph import datasets
        spec = datasets.DatasetSpec(
            name="slashdot",
            kind="social",
            paper=datasets.SLASHDOT.paper,
            builder=lambda: generators.rmat(6, 300, seed=1),
        )
        monkeypatch.setitem(datasets._REGISTRY, "slashdot", spec)
        g1, _ = datasets.load("slashdot", weighted=True, cache_dir=tmp_path)
        g2, _ = datasets.load("slashdot", weighted=True, cache_dir=tmp_path)
        assert np.array_equal(g1.edge_weights, g2.edge_weights)

    def test_scaled_capacity(self):
        from repro.graph import datasets
        assert datasets.scaled_device_capacity() == 11 * 2**30 // 256

    def test_source_strategies(self):
        from repro.graph import datasets
        g = generators.star_graph(5)  # hub is vertex 0
        spec = datasets.get_spec("livejournal")
        assert spec.source_vertex(g) == 0  # max degree
        web_spec = datasets.get_spec("uk-2005")
        assert web_spec.source_vertex(g) == 0  # vertex0 strategy
