"""Unit and property tests for the utility helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.ragged import ragged_arange, ragged_gather_indices, segment_ids
from repro.utils.tables import render_table
from repro.utils.units import format_bytes, format_ms, parse_size, KIB, MIB, GIB
from repro.utils.validation import (
    check_nonneg_int,
    check_positive,
    check_probability,
    ensure_array,
)


class TestUnits:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", 0),
            ("4096", 4096),
            ("2KB", 2 * KIB),
            ("2kib", 2 * KIB),
            ("1.5MB", int(1.5 * MIB)),
            ("11GB", 11 * GIB),
            (123, 123),
            (12.7, 12),
        ],
    )
    def test_parse_size(self, text, expected):
        assert parse_size(text) == expected

    def test_parse_size_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_size("eleven gigabytes")

    def test_parse_size_rejects_negative(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2 * KIB) == "2.00 KiB"
        assert format_bytes(3 * GIB) == "3.00 GiB"

    def test_format_ms(self):
        assert format_ms(0.5).endswith("us")
        assert format_ms(12).endswith("ms")
        assert format_ms(2500).endswith("s")


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 2.0) == 2.0
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_nonneg_int(self):
        assert check_nonneg_int("n", np.int64(3)) == 3
        with pytest.raises(ValueError):
            check_nonneg_int("n", -1)
        with pytest.raises(TypeError):
            check_nonneg_int("n", 1.5)
        with pytest.raises(TypeError):
            check_nonneg_int("n", True)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_ensure_array_converts_dtype(self):
        out = ensure_array("a", [1, 2, 3], np.int32)
        assert out.dtype == np.int32

    def test_ensure_array_passes_through(self):
        a = np.array([1, 2], dtype=np.int32)
        assert ensure_array("a", a, np.int32) is a

    def test_ensure_array_rejects_2d(self):
        from repro.errors import GraphFormatError
        with pytest.raises(GraphFormatError):
            ensure_array("a", np.zeros((2, 2)), np.int32)


class TestRagged:
    def test_ragged_arange_basic(self):
        assert list(ragged_arange([3, 2])) == [0, 1, 2, 0, 1]

    def test_ragged_arange_with_zeros(self):
        assert list(ragged_arange([0, 2, 0, 1])) == [0, 1, 0]

    def test_ragged_arange_empty(self):
        assert len(ragged_arange([])) == 0
        assert len(ragged_arange([0, 0])) == 0

    def test_gather_indices(self):
        out = ragged_gather_indices([10, 20], [2, 3])
        assert list(out) == [10, 11, 20, 21, 22]

    def test_gather_indices_mismatch(self):
        with pytest.raises(ValueError):
            ragged_gather_indices([1], [1, 2])

    def test_segment_ids(self):
        assert list(segment_ids([2, 0, 3])) == [0, 0, 2, 2, 2]

    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=50))
    def test_ragged_arange_matches_reference(self, counts):
        expected = np.concatenate(
            [np.arange(c) for c in counts] or [np.empty(0, dtype=np.int64)]
        )
        assert np.array_equal(ragged_arange(counts), expected)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=0, max_value=10),
            ),
            max_size=30,
        )
    )
    def test_gather_matches_reference(self, pairs):
        starts = [p[0] for p in pairs]
        counts = [p[1] for p in pairs]
        expected = np.concatenate(
            [np.arange(s, s + c) for s, c in pairs]
            or [np.empty(0, dtype=np.int64)]
        )
        assert np.array_equal(ragged_gather_indices(starts, counts), expected)


class TestTables:
    def test_render_basic(self):
        out = render_table(["a", "bb"], [[1, 2.5], ["x", float("nan")]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "-" in lines[1]
        assert "2.50" in lines[2]
        assert lines[3].split("|")[1].strip() == "-"  # NaN renders as '-'

    def test_title(self):
        out = render_table(["h"], [[1]], title="Table X")
        assert out.splitlines()[0] == "Table X"

    def test_column_count_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])
