"""Tests for the traversal-problem definitions and CPU references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import BFS, SSSP, SSWP, cpu_reference, get_problem
from repro.errors import ConfigError
from repro.graph import generators
from repro.graph.csr import CSRGraph
from repro.graph.weights import attach_weights, unit_weights


class TestRegistry:
    def test_get_problem(self):
        assert get_problem("bfs").name == "bfs"
        assert get_problem("SSSP").name == "sssp"
        assert get_problem("sswp").name == "sswp"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            get_problem("pagerank")

    def test_weight_requirements(self):
        assert not BFS().needs_weights
        assert SSSP().needs_weights
        assert SSWP().needs_weights

    def test_check_graph_rejects_unweighted(self, skewed_graph):
        with pytest.raises(ConfigError):
            SSSP().check_graph(skewed_graph)

    def test_check_graph_rejects_nonpositive_weights(self, skewed_graph):
        g = skewed_graph.with_weights(
            np.zeros(skewed_graph.num_edges, dtype=np.float32)
        )
        with pytest.raises(ConfigError):
            SSSP().check_graph(g)


class TestBFSSemantics:
    def test_initial_labels(self):
        labels = BFS().initial_labels(4, 2)
        assert labels[2] == 0
        assert np.all(np.isinf(labels[[0, 1, 3]]))

    def test_candidates_ignore_weights(self):
        p = BFS()
        src = np.array([0.0, 1.0], dtype=np.float32)
        assert list(p.candidates(src, None)) == [1.0, 2.0]
        assert list(p.candidates(src, np.array([9.0, 9.0]))) == [1.0, 2.0]

    def test_scatter_reduce_is_min(self):
        labels = np.array([5.0, 5.0], dtype=np.float32)
        BFS().scatter_reduce(labels, np.array([0, 0, 1]),
                             np.array([3.0, 4.0, 9.0], dtype=np.float32))
        assert list(labels) == [3.0, 5.0]

    def test_reached_mask(self):
        p = BFS()
        labels = np.array([0.0, 2.0, np.inf], dtype=np.float32)
        assert list(p.reached_mask(labels, 0)) == [True, True, False]


class TestSSWPSemantics:
    def test_initial_labels(self):
        labels = SSWP().initial_labels(3, 1)
        assert labels[1] == np.inf
        assert labels[0] == 0.0

    def test_candidates_are_bottleneck(self):
        p = SSWP()
        src = np.array([np.inf, 5.0], dtype=np.float32)
        w = np.array([3.0, 9.0], dtype=np.float32)
        assert list(p.candidates(src, w)) == [3.0, 5.0]

    def test_scatter_reduce_is_max(self):
        labels = np.array([1.0], dtype=np.float32)
        SSWP().scatter_reduce(labels, np.array([0, 0]),
                              np.array([4.0, 2.0], dtype=np.float32))
        assert labels[0] == 4.0

    def test_candidates_need_weights(self):
        with pytest.raises(ValueError):
            SSWP().candidates(np.array([1.0]), None)
        with pytest.raises(ValueError):
            SSSP().candidates(np.array([1.0]), None)


class TestCPUReferences:
    def test_bfs_path(self):
        g = generators.path_graph(5)
        levels = cpu_reference.bfs_levels(g, 0)
        assert list(levels) == [0, 1, 2, 3, 4]

    def test_bfs_unreachable(self):
        g = generators.star_graph(3, out=False)
        levels = cpu_reference.bfs_levels(g, 0)
        assert levels[0] == 0
        assert np.all(np.isinf(levels[1:]))

    def test_sssp_simple(self):
        g = CSRGraph.from_edges([0, 0, 1], [1, 2, 2], num_vertices=3,
                                weights=[1.0, 10.0, 2.0])
        dist = cpu_reference.sssp_distances(g, 0)
        assert list(dist) == [0.0, 1.0, 3.0]

    def test_sswp_simple(self):
        # Two routes to vertex 2: direct width 2, via vertex 1 width 5.
        g = CSRGraph.from_edges([0, 0, 1], [2, 1, 2], num_vertices=3,
                                weights=[2.0, 9.0, 5.0])
        widths = cpu_reference.sswp_widths(g, 0)
        assert widths[2] == 5.0
        assert widths[1] == 9.0
        assert widths[0] == np.inf

    def test_sswp_needs_weights(self, skewed_graph):
        with pytest.raises(ValueError):
            cpu_reference.sswp_widths(skewed_graph, 0)

    def test_dispatch(self, weighted_skewed_graph):
        for name in ("bfs", "sssp", "sswp"):
            labels = cpu_reference.reference_labels(weighted_skewed_graph, 0, name)
            assert len(labels) == weighted_skewed_graph.num_vertices
        with pytest.raises(ValueError):
            cpu_reference.reference_labels(weighted_skewed_graph, 0, "nope")

    def test_sssp_with_unit_weights_equals_bfs(self, skewed_graph):
        g = skewed_graph.with_weights(unit_weights(skewed_graph.num_edges))
        bfs = cpu_reference.bfs_levels(g, 1)
        sssp = cpu_reference.sssp_distances(g, 1)
        assert np.array_equal(bfs, sssp)

    @given(seed=st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_sssp_triangle_inequality(self, seed):
        g = attach_weights(generators.erdos_renyi(40, 200, seed=seed),
                           seed=seed)
        dist = cpu_reference.sssp_distances(g, 0)
        # For every edge (u, v, w): dist[v] <= dist[u] + w.
        src = g.edge_sources()
        ok = dist[g.column_indices] <= dist[src] + g.edge_weights + 1e-4
        assert np.all(ok | np.isinf(dist[src]))

    @given(seed=st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_sswp_bottleneck_consistency(self, seed):
        g = attach_weights(generators.erdos_renyi(40, 200, seed=seed),
                           seed=seed)
        width = cpu_reference.sswp_widths(g, 0)
        # For every edge (u, v, w): width[v] >= min(width[u], w).
        src = g.edge_sources()
        lower = np.minimum(width[src], g.edge_weights)
        assert np.all(width[g.column_indices] >= lower - 1e-4)
