"""Tests for the device allocator and unified-memory manager."""

import numpy as np
import pytest

from repro.errors import AllocationError, DeviceOutOfMemoryError
from repro.gpu.device import GTX_1080TI
from repro.gpu.memory import DeviceMemory
from repro.gpu.profiler import Profiler
from repro.gpu.um import UnifiedMemoryManager
from repro.utils.units import KIB, MIB


@pytest.fixture
def small_device():
    return DeviceMemory(GTX_1080TI.with_capacity(1 * MIB))


class TestDeviceMemory:
    def test_alloc_tracks_usage(self, small_device):
        a = small_device.alloc("x", np.zeros(1000, dtype=np.float32))
        assert small_device.device_bytes_in_use == a.nbytes == 4000

    def test_oom_raised(self, small_device):
        with pytest.raises(DeviceOutOfMemoryError) as exc:
            small_device.alloc("big", np.zeros(2 * MIB, dtype=np.uint8))
        assert exc.value.capacity == 1 * MIB

    def test_oom_accounts_existing_allocations(self, small_device):
        small_device.alloc("a", np.zeros(600 * KIB, dtype=np.uint8))
        with pytest.raises(DeviceOutOfMemoryError):
            small_device.alloc("b", np.zeros(600 * KIB, dtype=np.uint8))

    def test_um_never_ooms_on_alloc(self, small_device):
        a = small_device.alloc("um", np.zeros(16 * MIB, dtype=np.uint8), kind="um")
        assert a.kind == "um"
        assert small_device.device_bytes_in_use == 0

    def test_free_releases_capacity(self, small_device):
        a = small_device.alloc("a", np.zeros(900 * KIB, dtype=np.uint8))
        small_device.free(a)
        small_device.alloc("b", np.zeros(900 * KIB, dtype=np.uint8))

    def test_double_free_rejected(self, small_device):
        a = small_device.alloc("a", np.zeros(10, dtype=np.uint8))
        small_device.free(a)
        with pytest.raises(AllocationError):
            small_device.free(a)

    def test_use_after_free_rejected(self, small_device):
        a = small_device.alloc("a", np.zeros(10, dtype=np.int32))
        small_device.free(a)
        with pytest.raises(AllocationError):
            a.addresses_of(np.array([0]))

    def test_allocations_do_not_alias(self, small_device):
        a = small_device.alloc("a", np.zeros(100, dtype=np.int32))
        b = small_device.alloc("b", np.zeros(100, dtype=np.int32))
        a_lo, a_hi = a.address_range()
        b_lo, b_hi = b.address_range()
        assert a_hi <= b_lo or b_hi <= a_lo

    def test_alignment(self, small_device):
        small_device.alloc("a", np.zeros(3, dtype=np.uint8))
        b = small_device.alloc("b", np.zeros(3, dtype=np.uint8))
        assert b.base_address % 256 == 0

    def test_addresses_of(self, small_device):
        a = small_device.alloc("a", np.zeros(10, dtype=np.float32))
        addrs = a.addresses_of(np.array([0, 3]))
        assert addrs[0] == a.base_address
        assert addrs[1] == a.base_address + 12

    def test_unknown_kind_rejected(self, small_device):
        with pytest.raises(ValueError):
            small_device.alloc("x", np.zeros(1), kind="texture")

    def test_free_all(self, small_device):
        small_device.alloc("a", np.zeros(10, dtype=np.uint8))
        small_device.alloc("b", np.zeros(10, dtype=np.uint8), kind="um")
        small_device.free_all()
        assert small_device.device_bytes_in_use == 0
        assert not small_device.allocations()


@pytest.fixture
def um_setup():
    spec = GTX_1080TI.with_capacity(1 * MIB)
    mem = DeviceMemory(spec)
    um = UnifiedMemoryManager(spec, mem)
    arr = mem.alloc("csr", np.zeros(512 * KIB, dtype=np.uint8), kind="um")
    um.register(arr)
    return spec, mem, um, arr


class TestUnifiedMemory:
    def test_first_touch_migrates(self, um_setup):
        spec, mem, um, arr = um_setup
        batch = um.touch(arr, np.array([0, 1, 2]))
        assert batch.bytes_moved == 3 * spec.page_bytes
        assert len(batch.migrations) == 1  # contiguous pages merge

    def test_resident_pages_do_not_remigrate(self, um_setup):
        _, _, um, arr = um_setup
        um.touch(arr, np.array([0, 1]))
        batch = um.touch(arr, np.array([0, 1]))
        assert batch.bytes_moved == 0
        assert batch.time_ms == 0.0

    def test_noncontiguous_pages_split_migrations(self, um_setup):
        _, _, um, arr = um_setup
        batch = um.touch(arr, np.array([0, 5, 6, 20]))
        assert len(batch.migrations) == 3

    def test_migration_capped_at_driver_max(self):
        spec = GTX_1080TI.with_capacity(8 * MIB)
        mem = DeviceMemory(spec)
        um = UnifiedMemoryManager(spec, mem)
        arr = mem.alloc("csr", np.zeros(4 * MIB, dtype=np.uint8), kind="um")
        um.register(arr)
        max_pages = spec.um_max_migration_bytes // spec.page_bytes
        batch = um.touch(arr, np.arange(max_pages + 10))
        assert len(batch.migrations) == 2
        assert max(batch.migrations) == spec.um_max_migration_bytes

    def test_prefetch_uses_2mib_chunks(self):
        spec = GTX_1080TI.with_capacity(16 * MIB)
        mem = DeviceMemory(spec)
        um = UnifiedMemoryManager(spec, mem)
        arr = mem.alloc("csr", np.zeros(5 * MIB, dtype=np.uint8), kind="um")
        um.register(arr)
        prof = Profiler()
        batch = um.prefetch(arr, prof)
        assert sorted(batch.migrations, reverse=True)[:2] == [2 * MIB, 2 * MIB]
        assert batch.bytes_moved == 5 * MIB
        assert prof.migration_sizes == batch.migrations

    def test_prefetch_idempotent(self, um_setup):
        _, _, um, arr = um_setup
        um.prefetch(arr)
        again = um.prefetch(arr)
        assert again.bytes_moved == 0

    def test_oversubscription_evicts(self):
        spec = GTX_1080TI.with_capacity(64 * KIB)
        mem = DeviceMemory(spec)
        um = UnifiedMemoryManager(spec, mem)
        arr = mem.alloc("big", np.zeros(256 * KIB, dtype=np.uint8), kind="um")
        um.register(arr)
        um.touch(arr, np.arange(16))  # fill budget (64K/4K = 16 pages)
        batch = um.touch(arr, np.arange(16, 32))
        assert batch.evicted_pages == 16
        assert um.total_resident_pages <= um.resident_budget_pages

    def test_eviction_victims_are_lru(self):
        spec = GTX_1080TI.with_capacity(16 * KIB)  # 4-page budget
        mem = DeviceMemory(spec)
        um = UnifiedMemoryManager(spec, mem)
        arr = mem.alloc("a", np.zeros(64 * KIB, dtype=np.uint8), kind="um")
        um.register(arr)
        um.touch(arr, np.array([0]))
        um.touch(arr, np.array([1]))
        um.touch(arr, np.array([2, 3]))
        um.touch(arr, np.array([0]))  # refresh page 0
        batch = um.touch(arr, np.array([9]))  # must evict page 1 (oldest)
        assert batch.evicted_pages == 1
        refetch = um.touch(arr, np.array([1]))
        assert refetch.bytes_moved == spec.page_bytes

    def test_device_allocs_shrink_um_budget(self):
        spec = GTX_1080TI.with_capacity(64 * KIB)
        mem = DeviceMemory(spec)
        um = UnifiedMemoryManager(spec, mem)
        mem.alloc("labels", np.zeros(32 * KIB, dtype=np.uint8))
        assert um.resident_budget_pages == 8

    def test_unregistered_array_rejected(self, um_setup):
        _, mem, um, _ = um_setup
        other = mem.alloc("other", np.zeros(8192, dtype=np.uint8), kind="um")
        with pytest.raises(AllocationError):
            um.touch(other, np.array([0]))

    def test_device_array_cannot_register(self, um_setup):
        _, mem, um, _ = um_setup
        dev = mem.alloc("dev", np.zeros(16, dtype=np.uint8))
        with pytest.raises(AllocationError):
            um.register(dev)

    def test_out_of_range_page_rejected(self, um_setup):
        _, _, um, arr = um_setup
        with pytest.raises(AllocationError):
            um.touch(arr, np.array([10**6]))

    def test_touch_byte_ranges(self, um_setup):
        spec, _, um, arr = um_setup
        batch = um.touch_byte_ranges(
            arr, np.array([0, 4096 * 3 + 10]), np.array([10, 100])
        )
        assert batch.bytes_moved == 2 * spec.page_bytes

    def test_touch_byte_ranges_spanning_pages(self, um_setup):
        spec, _, um, arr = um_setup
        batch = um.touch_byte_ranges(arr, np.array([4090]), np.array([10]))
        assert batch.bytes_moved == 2 * spec.page_bytes

    def test_resident_fraction(self, um_setup):
        _, _, um, arr = um_setup
        assert um.resident_fraction(arr) == 0.0
        um.prefetch(arr)
        assert um.resident_fraction(arr) == 1.0

    def test_migration_sizes_recorded_for_table5(self, um_setup):
        _, _, um, arr = um_setup
        prof = Profiler()
        um.touch(arr, np.array([0, 1, 2, 3, 4, 10]), prof)
        avg, lo, hi = prof.migration_size_stats()
        assert lo == 4096
        assert hi == 5 * 4096
        assert avg == (5 * 4096 + 4096) / 2
