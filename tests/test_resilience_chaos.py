"""Chaos-mode acceptance: the resilience contract over many fault plans."""

from __future__ import annotations

import pytest

from repro.core.config import EtaGraphConfig, MemoryMode
from repro.resilience.chaos import check_bit_identity, run_chaos
from repro.testing.fuzz import random_graph

import numpy as np


class TestChaosSweep:
    def test_200_fault_plans_uphold_the_contract(self):
        """The ISSUE's acceptance criterion: >= 200 seeded fault plans,
        zero mismatched results, zero non-ReproError exceptions."""
        report = run_chaos(max_plans=200, seed=0)
        assert report.plans == 200
        assert report.ok, report.summary()
        # The sweep must actually exercise the machinery, not no-op.
        assert report.faults_fired > 0
        assert report.degraded > 0
        assert report.ok_results > 0

    def test_sweep_exercises_every_ladder_rung(self):
        report = run_chaos(max_plans=200, seed=0)
        assert set(report.placements) == {
            "device", "um_prefetch", "um_oversubscribed", "direct_access",
            "zero_copy", "cpu_oracle",
        }

    def test_sweep_surfaces_typed_errors_too(self):
        # Some cases run with the CPU rung disallowed, so persistent
        # faults must surface as typed errors — and only typed errors.
        report = run_chaos(max_plans=200, seed=0)
        assert report.typed_errors
        assert sum(report.typed_errors.values()) + report.ok_results == \
            report.queries

    def test_sweep_is_seed_deterministic(self):
        a = run_chaos(max_plans=40, seed=3)
        b = run_chaos(max_plans=40, seed=3)
        assert (a.ok_results, a.degraded, a.typed_errors, a.placements,
                a.faults_fired) == \
               (b.ok_results, b.degraded, b.typed_errors, b.placements,
                b.faults_fired)

    def test_time_budget_is_honoured(self):
        report = run_chaos(max_seconds=0.5, seed=1)
        assert report.plans >= 1
        assert report.elapsed_s < 5.0


class TestBitIdentity:
    @pytest.mark.parametrize("mode", [
        MemoryMode.DEVICE, MemoryMode.UM_PREFETCH,
    ], ids=lambda m: m.value)
    def test_no_fault_wrapper_is_hash_identical(self, mode):
        rng = np.random.default_rng(5)
        graph = random_graph(rng, weighted=True, max_vertices=64)
        mismatches = check_bit_identity(
            graph, ("bfs", "sssp", "cc"), (0, 1),
            EtaGraphConfig(memory_mode=mode),
        )
        assert mismatches == []
