"""Serving-plane observability (PR 10): request-scoped span trees,
hedge-track stitching, SLO burn-rate monitors, the flight recorder,
and golden trace bytes for a seeded multi-tenant run.

The golden scenario is a 2-lane service with sustained transfer faults
on lane 0 (drives one breaker trip and typed errors) and absorbed
fault bursts on lane 1 (drives hedged requests), serving a three-tenant
BFS mix — hedging AND a breaker trip, with ``allow_cpu_fallback=False``
so no wall-clock ``cpu_oracle`` span can leak into the golden bytes.

Regenerate the golden files with ``REGEN_GOLDEN=1 python -m pytest
tests/test_observability_serving.py``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.graph.generators import erdos_renyi
from repro.observability.export import (
    dumps_stable,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
)
from repro.observability.metrics import MetricsRegistry, unified_snapshot
from repro.observability.recorder import FlightRecorder
from repro.observability.slo import (
    SLO_STATES,
    SLOMonitor,
    SLOPolicy,
    render_slo_report,
)
from repro.observability.summarize import render_request, request_ids
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.session import RetryPolicy
from repro.serving.admission import TenantQuota
from repro.serving.health import HealthPolicy
from repro.serving.requests import VisitRequest
from repro.serving.service import TraversalService

GOLDEN_DIR = Path(__file__).parent / "golden"
TENANTS = ("interactive", "batch", "analytics")


def golden_scenario(recorder=None):
    """The seeded multi-tenant run the golden files pin down: 36 BFS
    requests over three tenants, ≥1 hedge launched and ≥1 breaker
    trip, no CPU fallback (its spans carry wall-clock durations)."""
    csr = erdos_renyi(48, 200, seed=3)
    plans = {
        0: FaultPlan(specs=(
            FaultSpec(kind="transfer_fault", at=0, count=30),
        )),
        1: FaultPlan(specs=(
            FaultSpec(kind="transfer_fault", at=10, count=2),
            FaultSpec(kind="transfer_fault", at=20, count=2),
            FaultSpec(kind="transfer_fault", at=30, count=2),
        )),
    }
    with TraversalService(
        csr, pool_size=2, telemetry=True,
        fault_plans=plans,
        policy=RetryPolicy(max_retries=2, backoff_base_ms=2.0,
                           jitter=0.0, allow_cpu_fallback=False),
        health=HealthPolicy(failure_threshold=2, open_ms=6.0,
                            hedge_min_samples=8, brownout=False),
        default_quota=TenantQuota(max_pending=64),
        recorder=recorder,
    ) as service:
        responses = []
        for batch in range(4):
            responses += service.serve([
                VisitRequest(problem="bfs", source=(7 * batch + i) % 48,
                             tenant=TENANTS[i % 3], deadline_ms=80.0)
                for i in range(9)
            ])
    return service, responses


@pytest.fixture(scope="module")
def golden_run():
    service, responses = golden_scenario()
    return service, responses, service.trace()


@pytest.fixture(scope="module")
def plain_run():
    """A healthy traced run (no faults) for span-tree structure tests."""
    csr = erdos_renyi(40, 160, seed=1)
    with TraversalService(csr, pool_size=2, telemetry=True) as service:
        responses = service.serve([
            VisitRequest(problem="bfs", source=i, tenant="t",
                         deadline_ms=50.0)
            for i in range(6)
        ])
    return service, responses, service.trace()


# ----------------------------------------------------------------------
# Request-scoped span trees
# ----------------------------------------------------------------------

class TestRequestSpanTree:

    def test_every_response_carries_a_request_id(self, plain_run):
        _, responses, _ = plain_run
        ids = [r.request_id for r in responses]
        assert all(i.startswith("req-") for i in ids)
        assert len(set(ids)) == len(ids)

    def test_every_request_has_a_request_span(self, plain_run):
        _, responses, trace = plain_run
        spans = {
            r.attrs["request_id"]: r
            for r in trace.spans("service", "request")
        }
        for response in responses:
            assert response.request_id in spans
            rec = spans[response.request_id]
            assert rec.attrs["tenant"] == response.tenant
            assert rec.start_ms == pytest.approx(response.arrival_ms)
            assert rec.end_ms == pytest.approx(response.finish_ms)

    def test_tree_nests_queue_dispatch_engine(self, plain_run):
        _, responses, trace = plain_run
        for root in trace.spans("service", "request"):
            names = {c.name for c in trace.children_of(root.sid)}
            assert "queue" in names
            dispatch = next(
                c for c in trace.children_of(root.sid)
                if c.name == "dispatch"
            )
            # Engine records are grafted under the dispatch span and
            # re-based onto the service clock.
            engine = [
                c for c in trace.children_of(dispatch.sid)
                if c.category == "engine"
            ]
            assert engine
            for rec in engine:
                assert rec.attrs["request_id"] == root.attrs["request_id"]
                assert "lane" in rec.attrs
                assert rec.start_ms >= dispatch.start_ms - 1e-9

    def test_render_request_tree(self, plain_run):
        _, responses, trace = plain_run
        rid = responses[0].request_id
        text = render_request(trace, rid)
        assert text.startswith(f"request {rid}:")
        assert "queue [service]" in text
        assert "dispatch [service]" in text
        assert "[engine]" in text

    def test_render_unknown_request(self, plain_run):
        _, _, trace = plain_run
        text = render_request(trace, "req-99999")
        assert text.startswith("no request span")
        assert "req-00000" in text  # lists the known ids

    def test_request_ids_enumerates_all(self, plain_run):
        _, responses, trace = plain_run
        assert request_ids(trace) == sorted(
            r.request_id for r in responses
        )


class TestWaveLinking:

    @pytest.fixture(scope="class")
    def wave_run(self):
        csr = erdos_renyi(40, 160, seed=2)
        with TraversalService(
            csr, pool_size=1, telemetry=True, wave_width=4,
        ) as service:
            responses = service.serve([
                VisitRequest(problem="bfs", source=i, tenant="w")
                for i in range(4)
            ])
        return service, responses, service.trace()

    def test_members_point_at_shared_wave_span(self, wave_run):
        _, responses, trace = wave_run
        waves = {r.sid: r for r in trace.spans("service", "wave")}
        assert waves
        members = [
            r for r in trace.spans("service", "request")
            if "wave_sid" in r.attrs
        ]
        assert len(members) == len(responses)
        for rec in members:
            wave = waves[rec.attrs["wave_sid"]]
            assert wave.attrs["width"] == len(responses)
            assert rec.attrs["wave_lane"] is not None

    def test_render_request_follows_wave_sid(self, wave_run):
        _, responses, trace = wave_run
        text = render_request(trace, responses[0].request_id)
        assert "shared wave traversal (via wave_sid):" in text
        assert "wave [service]" in text


# ----------------------------------------------------------------------
# Hedge stitching (satellite: distinct lane attrs, own track)
# ----------------------------------------------------------------------

class TestHedgeStitching:

    def test_scenario_hedged_and_tripped(self, golden_run):
        service, responses, _ = golden_run
        assert service.health.hedges >= 1
        assert sum(lane.opens for lane in service.health.lanes) >= 1
        assert any(r.hedged for r in responses)
        assert any(not r.ok and not r.shed for r in responses)

    def test_hedge_wrappers_on_hedge_track(self, golden_run):
        service, responses, trace = golden_run
        wrappers = trace.spans("hedge", "hedge")
        assert len(wrappers) == service.health.hedges
        hedged_ids = {r.request_id for r in responses if r.hedged}
        for rec in wrappers:
            assert rec.attrs["request_id"] in hedged_ids
            assert "won" in rec.attrs and "threshold_ms" in rec.attrs

    def test_hedge_lane_distinct_from_primary(self, golden_run):
        _, _, trace = golden_run
        dispatches = {
            r.attrs["request_id"]: r
            for r in trace.records if r.name == "dispatch"
        }
        for rec in trace.spans("hedge", "hedge"):
            primary = dispatches[rec.attrs["request_id"]]
            assert rec.attrs["lane"] != primary.attrs["worker"]

    def test_hedge_leg_records_never_leak_to_primary_tracks(
        self, golden_run,
    ):
        _, _, trace = golden_run
        # Every span grafted under a hedge wrapper is re-categorised to
        # the hedge track — the spare replica's kernels must not
        # interleave with the primary lane's engine/compute rows.
        wrappers = trace.spans("hedge", "hedge")

        def descendants(sid):
            for child in trace.children_of(sid):
                yield child
                yield from descendants(child.sid)

        for wrapper in wrappers:
            legs = list(descendants(wrapper.sid))
            assert legs
            for rec in legs:
                assert rec.category == "hedge"
                assert rec.attrs["lane"] == wrapper.attrs["lane"]

    def test_hedge_wrapper_is_sibling_of_dispatch(self, golden_run):
        _, _, trace = golden_run
        by_sid = {r.sid: r for r in trace.records}
        for rec in trace.spans("hedge", "hedge"):
            parent = by_sid[rec.parent]
            assert parent.name == "request"


# ----------------------------------------------------------------------
# SLO burn-rate monitors
# ----------------------------------------------------------------------

class TestSLOMonitor:

    def test_burn_rate_math(self):
        monitor = SLOMonitor(SLOPolicy(
            objective=0.9, fast_window_ms=40.0, slow_window_ms=200.0,
            min_samples=1,
        ))
        for i in range(10):
            monitor.record("t", float(i), hit=(i != 0))
        # 1 miss in 10 inside both windows: miss rate 0.1 against an
        # error budget of 0.1 -> burn exactly 1.0.
        assert monitor.burn_rate("t", 9.0, fast=False) == \
            pytest.approx(1.0)

    def test_ladder_escalates_to_page(self):
        monitor = SLOMonitor(SLOPolicy(objective=0.9, min_samples=4))
        alerts = []
        for i in range(8):
            alerts += monitor.record("t", float(i), hit=False)
        assert monitor.state("t") == "page"
        assert [a.state for a in alerts] == ["page"]
        assert alerts[0].escalation
        assert monitor.worst_state == "page"
        assert monitor.alerts == alerts

    def test_min_samples_guard(self):
        monitor = SLOMonitor(SLOPolicy(objective=0.9, min_samples=10))
        for i in range(9):
            assert monitor.record("t", float(i), hit=False) == []
        assert monitor.state("t") == "ok"

    def test_recovery_de_escalates(self):
        monitor = SLOMonitor(SLOPolicy(
            objective=0.5, fast_window_ms=10.0, slow_window_ms=20.0,
            min_samples=2,
        ))
        for i in range(6):
            monitor.record("t", float(i), hit=False)
        assert monitor.state("t") == "page"
        alerts = []
        for i in range(6, 40):
            alerts += monitor.record("t", float(i), hit=True)
        assert monitor.state("t") == "ok"
        assert alerts and not alerts[-1].escalation

    def test_per_tenant_objectives(self):
        monitor = SLOMonitor(objectives={"a": 0.99, "b": 0.5})
        monitor.record("a", 0.0, hit=True)
        monitor.record("b", 0.0, hit=True)
        snap = monitor.snapshot()
        assert snap["a"]["objective"] == 0.99
        assert snap["b"]["objective"] == 0.5

    def test_export_gauges(self):
        monitor = SLOMonitor(SLOPolicy(objective=0.9, min_samples=1))
        for i in range(4):
            monitor.record("t", float(i), hit=False)
        reg = MetricsRegistry()
        monitor.export(reg, now_ms=3.0)
        gauges = reg.snapshot()["gauges"]
        assert gauges["slo.objective{tenant=t}"] == pytest.approx(0.9)
        assert gauges["slo.state{tenant=t}"] == \
            float(SLO_STATES.index("page"))
        assert "slo.burn_rate{tenant=t,window=slow}" in gauges

    def test_render_report(self):
        monitor = SLOMonitor(SLOPolicy(objective=0.9, min_samples=1))
        for i in range(4):
            monitor.record("t", float(i), hit=False)
        text = render_slo_report(monitor, now_ms=3.0)
        assert "burn" in text
        assert "page" in text
        assert "Alert transitions:" in text

    def test_service_feeds_monitor_at_every_terminal(self):
        csr = erdos_renyi(40, 160, seed=1)
        monitor = SLOMonitor(SLOPolicy(objective=0.9, min_samples=2))
        with TraversalService(
            csr, pool_size=1, slo=monitor,
        ) as service:
            responses = service.serve(
                [VisitRequest(problem="bfs", source=i, tenant="t",
                              deadline_ms=50.0) for i in range(4)]
                # A spent deadline sheds -> counts as an SLO miss.
                + [VisitRequest(problem="bfs", source=0, tenant="t",
                                deadline_ms=0.0)]
            )
        assert len(responses) == 5
        snap = monitor.snapshot()
        assert snap["t"]["samples"] == 5
        assert snap["t"]["hit_rate"] == pytest.approx(4 / 5)

    def test_slo_alerts_land_on_alerts_track(self):
        csr = erdos_renyi(40, 160, seed=1)
        monitor = SLOMonitor(SLOPolicy(objective=0.9, min_samples=2))
        with TraversalService(
            csr, pool_size=1, telemetry=True, slo=monitor,
        ) as service:
            service.serve([
                VisitRequest(problem="bfs", source=i, tenant="t",
                             deadline_ms=0.0)
                for i in range(4)
            ])
            trace = service.trace()
        alerts = trace.spans("alerts", "slo_alert")
        assert alerts
        assert alerts[0].attrs["tenant"] == "t"
        assert alerts[0].attrs["state"] in SLO_STATES
        counters = service.metrics.snapshot()["counters"]
        assert any(k.startswith("slo.alerts") for k in counters)


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------

class TestFlightRecorder:

    def test_triggers_name_errors_and_breakers(self, tmp_path):
        recorder = FlightRecorder(out_dir=tmp_path / "pm")
        golden_scenario(recorder=recorder)
        triggers = [m["trigger"] for m in recorder.dumps]
        assert any(t.startswith("error:") for t in triggers)
        assert any(t.startswith("breaker:lane") for t in triggers)

    def test_bundle_files_written_and_trace_validates(self, tmp_path):
        out = tmp_path / "pm"
        recorder = FlightRecorder(out_dir=out)
        golden_scenario(recorder=recorder)
        assert recorder.dumps
        for manifest in recorder.dumps:
            names = set(manifest["files"])
            stem = manifest["stem"]
            assert f"{stem}.events.jsonl" in names
            assert f"{stem}.trace.json" in names
            assert f"{stem}.metrics.json" in names
            assert f"{stem}.manifest.json" in names
            with open(out / f"{stem}.trace.json") as fh:
                assert validate_chrome_trace(json.load(fh)) == []
            with open(out / f"{stem}.events.jsonl") as fh:
                for line in fh:
                    entry = json.loads(line)
                    assert entry["kind"] in ("serve", "health")
            with open(out / f"{stem}.manifest.json") as fh:
                on_disk = json.load(fh)
            assert on_disk["trigger"] == manifest["trigger"]

    def test_bundles_are_deterministic(self, tmp_path):
        digests = []
        for leg in ("a", "b"):
            out = tmp_path / leg
            recorder = FlightRecorder(out_dir=out)
            golden_scenario(recorder=recorder)
            digests.append({
                p.name: p.read_bytes() for p in sorted(out.iterdir())
            })
        assert digests[0].keys() == digests[1].keys()
        assert digests[0] == digests[1]

    def test_in_memory_manifests_without_out_dir(self):
        recorder = FlightRecorder()
        golden_scenario(recorder=recorder)
        assert recorder.dumps
        assert all(m["files"] == [] for m in recorder.dumps)

    def test_sheds_and_refusals_do_not_trigger(self):
        csr = erdos_renyi(40, 160, seed=1)
        recorder = FlightRecorder()
        with TraversalService(
            csr, pool_size=1, recorder=recorder,
            default_quota=TenantQuota(max_pending=2),
        ) as service:
            responses = service.serve([
                VisitRequest(problem="bfs", source=i, tenant="t",
                             deadline_ms=0.0)
                for i in range(6)
            ])
        assert any(r.shed for r in responses)
        assert any(r.seq < 0 for r in responses)  # quota refusals
        assert recorder.dumps == []
        assert len(recorder.ring) == len(responses)

    def test_max_dumps_cap_suppresses(self):
        recorder = FlightRecorder(max_dumps=1)
        golden_scenario(recorder=recorder)
        assert len(recorder.dumps) == 1
        assert recorder.suppressed >= 1

    def test_snapshot_folds_recorder_and_slo_gauges(self):
        csr = erdos_renyi(40, 160, seed=1)
        monitor = SLOMonitor(SLOPolicy(objective=0.9, min_samples=2))
        recorder = FlightRecorder()
        with TraversalService(
            csr, pool_size=2, health=True, slo=monitor,
            recorder=recorder,
        ) as service:
            service.serve([
                VisitRequest(problem="bfs", source=i, tenant="t",
                             deadline_ms=50.0)
                for i in range(4)
            ])
            gauges = unified_snapshot(service=service)["gauges"]
        assert gauges["service.postmortems"] == 0.0
        assert gauges["service.recorder_entries"] == 4.0
        assert "slo.state{tenant=t}" in gauges
        assert "service.lane_state{lane=0}" in gauges
        assert "service.health_hedges" in gauges

    def test_health_fold_in_unified_snapshot(self, golden_run):
        service, _, _ = golden_run
        gauges = unified_snapshot(service=service)["gauges"]
        assert gauges["service.health_hedges"] == \
            float(service.health.hedges)
        assert gauges["service.lane_opens{lane=0}"] >= 1.0
        assert "service.lane_closes{lane=0}" in gauges
        assert "service.lane_observations{lane=1}" in gauges


# ----------------------------------------------------------------------
# Golden bytes + identity
# ----------------------------------------------------------------------

def _check_golden(name: str, got: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("REGEN_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(got, encoding="utf-8")
    assert path.exists(), (
        f"golden file {path} missing — regenerate with REGEN_GOLDEN=1"
    )
    assert got == path.read_text(encoding="utf-8"), (
        f"{name} drifted from the committed golden bytes; if the "
        "change is intentional, REGEN_GOLDEN=1 and commit the diff"
    )


class TestGoldenBytes:

    def test_chrome_trace_golden_bytes(self, golden_run):
        _, _, trace = golden_run
        _check_golden(
            "serve_pr10_trace.json",
            dumps_stable(to_chrome_trace(trace)) + "\n",
        )

    def test_jsonl_golden_bytes(self, golden_run):
        _, _, trace = golden_run
        _check_golden("serve_pr10_events.jsonl", to_jsonl(trace))

    def test_golden_trace_validates(self, golden_run):
        _, _, trace = golden_run
        assert validate_chrome_trace(to_chrome_trace(trace)) == []


class TestTraceIdentity:

    def test_observability_is_observational(self):
        from repro.serving.identity import check_trace_identity

        csr = erdos_renyi(40, 160, seed=1)
        assert check_trace_identity(csr, pool_size=2) == []

    def test_observational_over_resilient_lanes(self):
        from repro.serving.identity import check_trace_identity

        csr = erdos_renyi(40, 160, seed=1)
        assert check_trace_identity(csr, pool_size=2, resilient=True) \
            == []
