"""Regression tests for UM residency accounting under oversubscription.

Two driver bugs fixed by the session work:

* a fault/prefetch burst larger than the residency budget used to clamp
  eviction to the available candidates and then mark the whole burst
  resident, leaving ``total_resident_pages`` permanently above the
  budget;
* ``prefetch`` refreshed ``last_touch`` only for missing pages, so the
  already-resident pages of a just-prefetched array looked cold to LRU
  eviction and were dropped first.
"""

import numpy as np
import pytest

from repro.gpu.device import GTX_1080TI
from repro.gpu.memory import DeviceMemory
from repro.gpu.um import UnifiedMemoryManager
from repro.utils.units import KIB

PAGE = GTX_1080TI.page_bytes


def make_um(budget_pages: int):
    spec = GTX_1080TI.with_capacity(budget_pages * PAGE)
    mem = DeviceMemory(spec)
    return spec, mem, UnifiedMemoryManager(spec, mem)


def register(um, mem, name, pages):
    arr = mem.alloc(name, np.zeros(pages * PAGE, dtype=np.uint8), kind="um")
    um.register(arr)
    return arr


class TestOversubscribedBurst:
    def test_touch_burst_larger_than_budget_stays_within_budget(self):
        spec, mem, um = make_um(budget_pages=32)
        arr = register(um, mem, "big", 64)
        batch = um.touch(arr, np.arange(64))
        # Every page crossed the bus ...
        assert batch.bytes_moved == 64 * PAGE
        # ... but only the budget's worth stays resident.
        assert um.total_resident_pages == 32
        assert um.total_resident_pages <= um.resident_budget_pages
        # The survivors are the burst's tail (migrated last).
        assert um.resident_fraction(arr) == pytest.approx(0.5)
        state = um._states[arr.base_address]
        assert state.resident[32:].all() and not state.resident[:32].any()

    def test_repeated_oversubscribed_touches_never_leak(self):
        spec, mem, um = make_um(budget_pages=16)
        a = register(um, mem, "a", 48)
        b = register(um, mem, "b", 48)
        for arr in (a, b, a, b):
            um.touch(arr, np.arange(48))
            assert um.total_resident_pages <= um.resident_budget_pages

    def test_prefetch_burst_larger_than_budget_stays_within_budget(self):
        spec, mem, um = make_um(budget_pages=32)
        arr = register(um, mem, "big", 64)
        batch = um.prefetch(arr)
        assert batch.bytes_moved == 64 * PAGE
        assert um.total_resident_pages == 32
        assert batch.evicted_pages == 32

    def test_zero_budget_admits_nothing(self):
        spec, mem, um = make_um(budget_pages=8)
        # Device allocations consume the entire capacity: budget is 0.
        mem.alloc("labels", np.zeros(8 * PAGE, dtype=np.uint8))
        arr = register(um, mem, "topo", 4)
        batch = um.touch(arr, np.arange(4))
        assert batch.bytes_moved == 4 * PAGE  # thrash: moved, then dropped
        assert um.total_resident_pages == 0

    def test_within_budget_burst_unaffected(self):
        spec, mem, um = make_um(budget_pages=32)
        arr = register(um, mem, "small", 16)
        batch = um.touch(arr, np.arange(16))
        assert batch.bytes_moved == 16 * PAGE
        assert batch.evicted_pages == 0
        assert um.total_resident_pages == 16


class TestPrefetchLRURefresh:
    def test_prefetch_refreshes_resident_pages_clocks(self):
        spec, mem, um = make_um(budget_pages=24)
        a = register(um, mem, "a", 16)
        b = register(um, mem, "b", 16)

        um.prefetch(a)                      # A fully resident (16)
        um.touch(b, np.arange(8))           # B:0-7 resident (24, at budget)
        um.prefetch(a)                      # no movement — but A is in use
        batch = um.touch(b, np.arange(8, 16))  # 8 incoming, must evict 8

        # The re-prefetched A is the most recently used allocation: the
        # evictions must fall on B's older pages, not on A.
        assert batch.evicted_pages == 8
        assert um.resident_fraction(a) == 1.0
        state_b = um._states[b.base_address]
        assert not state_b.resident[:8].any()
        assert state_b.resident[8:].all()

    def test_noop_prefetch_migrates_nothing(self):
        spec, mem, um = make_um(budget_pages=32)
        a = register(um, mem, "a", 16)
        um.prefetch(a)
        again = um.prefetch(a)
        assert again.bytes_moved == 0
        assert again.time_ms == 0.0
