"""Tests for MatrixMarket I/O, format dispatch and the traversal CLI."""

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.errors import GraphFormatError
from repro.graph import generators, io
from repro.graph.weights import attach_weights


@pytest.fixture
def graph():
    return generators.rmat(7, 1200, seed=51)


class TestMatrixMarket:
    def test_roundtrip_pattern(self, graph, tmp_path):
        p = tmp_path / "g.mtx"
        io.save_matrix_market(graph, p)
        loaded = io.load_matrix_market(p, weighted=False)
        assert loaded == graph

    def test_roundtrip_weighted(self, graph, tmp_path):
        g = attach_weights(graph, seed=5)
        p = tmp_path / "g.mtx"
        io.save_matrix_market(g, p)
        loaded = io.load_matrix_market(p)
        assert loaded == g

    def test_symmetric_matrix_expands(self, tmp_path):
        p = tmp_path / "sym.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 2\n2 1\n3 2\n"
        )
        g = io.load_matrix_market(p)
        edges = set(g.iter_edges())
        assert (0, 1) in edges and (1, 0) in edges
        assert (1, 2) in edges and (2, 1) in edges

    def test_one_indexed_conversion(self, tmp_path):
        p = tmp_path / "g.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 1\n1 2\n"
        )
        g = io.load_matrix_market(p)
        assert list(g.iter_edges()) == [(0, 1)]

    def test_garbage_rejected(self, tmp_path):
        p = tmp_path / "bad.mtx"
        p.write_text("this is not a matrix\n")
        with pytest.raises(GraphFormatError):
            io.load_matrix_market(p)


class TestLoadAny:
    def test_dispatch_by_extension(self, graph, tmp_path):
        io.save_edgelist_text(graph, tmp_path / "g.txt")
        io.save_galois_binary(graph, tmp_path / "g.gr")
        io.save_matrix_market(graph, tmp_path / "g.mtx")
        io.save_npz(graph, tmp_path / "g.npz")
        for name in ("g.txt", "g.gr", "g.mtx", "g.npz"):
            assert io.load_any(tmp_path / name) == graph


class TestCLI:
    @pytest.fixture
    def graph_file(self, graph, tmp_path):
        p = tmp_path / "g.txt"
        io.save_edgelist_text(graph, p)
        return str(p)

    def test_bfs_run(self, graph_file, capsys):
        assert cli_main([graph_file, "-a", "bfs"]) == 0
        out = capsys.readouterr().out
        assert "visited" in out and "simulated total" in out

    def test_validated_sssp(self, graph_file, capsys):
        assert cli_main([graph_file, "-a", "sssp", "--validate"]) == 0
        assert "fixed point confirmed" in capsys.readouterr().out

    def test_explicit_source_and_options(self, graph_file, capsys):
        assert cli_main([
            graph_file, "-a", "bfs", "-s", "3", "-k", "8",
            "--no-smp", "--memory", "device",
        ]) == 0
        out = capsys.readouterr().out
        assert "source: 3" in out and "smp=off" in out

    def test_capacity_parse(self, graph_file, capsys):
        assert cli_main([graph_file, "--capacity", "1GB"]) == 0

    def test_requires_exactly_one_input(self, capsys):
        assert cli_main([]) == 2
        assert cli_main(["x.txt", "--dataset", "slashdot"]) == 2
