"""Calibration anchors: measured points the paper states numerically.

Each test pins one of the few *absolute* numbers the paper reports about
the memory system, as a guard against cost-model drift.
"""

import numpy as np
import pytest

from repro.baselines import get_framework
from repro.bench.runner import BenchContext
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def ctx():
    return BenchContext()


class TestAnchors:
    def test_tigr_l2_hit_rate_near_paper(self, ctx):
        """Section V-A: 'In our experiments, L2 read hit rate is around
        19% for Tigr.'  Measured here on the LiveJournal surrogate."""
        g, src = ctx.load("livejournal", False)
        r = get_framework("tigr", ctx.device).run(g, "bfs", src)
        rate = r.profiler.kernels.l2_hit_rate
        assert 0.12 < rate < 0.30, rate

    def test_um_on_demand_min_migration_is_page_size(self, ctx):
        """Table V: minimum migrated chunk is the 4 KiB system page."""
        from repro.bench.runner import run_cell

        cell = run_cell(ctx, "etagraph-noump", "bfs", "livejournal")
        sizes = cell.extras["profiler"].migration_sizes
        assert min(sizes) == 4096

    def test_overlap_band(self, ctx):
        """Fig. 4: transfer/compute overlap for 60-80% of total time
        (we accept up to 95% — scaled kernels are relatively shorter)."""
        from repro.bench.runner import run_cell

        cell = run_cell(ctx, "etagraph-noump", "sssp", "com-orkut")
        frac = cell.extras["timeline"].overlap_fraction()
        assert 0.5 < frac <= 0.95

    def test_nan_weights_rejected(self):
        """Non-finite weights must fail fast, not corrupt labels."""
        from repro.algorithms import get_problem
        from repro.graph import generators

        g = generators.path_graph(3).with_weights(
            np.array([1.0, np.nan], dtype=np.float32)
        )
        with pytest.raises(ConfigError, match="finite"):
            get_problem("sssp").check_graph(g)
        g2 = generators.path_graph(3).with_weights(
            np.array([1.0, np.inf], dtype=np.float32)
        )
        with pytest.raises(ConfigError, match="finite"):
            get_problem("sswp").check_graph(g2)

    def test_cli_framework_option(self, capsys, tmp_path):
        from repro.__main__ import main
        from repro.graph import generators, io

        p = tmp_path / "g.txt"
        io.save_edgelist_text(generators.rmat(7, 1000, seed=1), p)
        assert main([str(p), "-a", "bfs", "--framework", "gunrock"]) == 0
        out = capsys.readouterr().out
        assert "framework: gunrock" in out

    def test_cli_unknown_framework(self, tmp_path):
        from repro.__main__ import main
        from repro.errors import ConfigError as CE
        from repro.graph import generators, io

        p = tmp_path / "g.txt"
        io.save_edgelist_text(generators.rmat(6, 200, seed=1), p)
        with pytest.raises(CE):
            main([str(p), "--framework", "mapgraph"])
