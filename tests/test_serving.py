"""Unit tests of the serving layer: admission, EDF scheduling, the
worker pool, endpoint behavior and service telemetry."""

import numpy as np
import pytest

from repro.core.config import EtaGraphConfig
from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    InvalidLaunchError,
    QuotaExceededError,
    SessionClosedError,
)
from repro.serving import (
    AdmissionQueue,
    NeighborhoodRequest,
    PageRankRequest,
    SessionPool,
    ShortestPathRequest,
    StatsRequest,
    TenantQuota,
    TraversalService,
    VisitRequest,
)


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------

class TestRequests:
    def test_requests_are_frozen_values(self):
        a = VisitRequest(problem="bfs", source=3, tenant="t")
        b = VisitRequest(problem="bfs", source=3, tenant="t")
        assert a == b
        with pytest.raises(AttributeError):
            a.source = 4

    def test_bad_slo_fields_rejected(self):
        with pytest.raises(ConfigError):
            VisitRequest(tenant="")
        with pytest.raises(ConfigError):
            VisitRequest(deadline_ms=-1.0)
        with pytest.raises(ConfigError):
            VisitRequest(iteration_budget=0)
        with pytest.raises(ConfigError):
            NeighborhoodRequest(hops=-1)
        with pytest.raises(ConfigError):
            PageRankRequest(damping=1.0)
        with pytest.raises(ConfigError):
            PageRankRequest(tolerance=0.0)

    def test_validate_against_graph(self, tiny_graph):
        with pytest.raises(InvalidLaunchError):
            VisitRequest(source=99).validate(tiny_graph)
        with pytest.raises(ConfigError):
            VisitRequest(problem="nope").validate(tiny_graph)
        with pytest.raises(ConfigError):
            # early-exit target only makes sense for BFS
            VisitRequest(problem="cc", source=0, target=1).validate(tiny_graph)
        with pytest.raises(InvalidLaunchError):
            ShortestPathRequest(source=0, target=99).validate(tiny_graph)
        VisitRequest(source=0).validate(tiny_graph)  # no raise


# ----------------------------------------------------------------------
# Admission: quotas, deadlines, EDF order
# ----------------------------------------------------------------------

class TestAdmission:
    def test_quota_accounting(self):
        queue = AdmissionQueue(default_quota=TenantQuota(max_pending=2))
        queue.submit(VisitRequest(tenant="a"), 0.0)
        queue.submit(VisitRequest(tenant="a"), 0.0)
        assert queue.pending("a") == 2
        with pytest.raises(QuotaExceededError):
            queue.submit(VisitRequest(tenant="a"), 0.0)
        # Another tenant has its own budget.
        queue.submit(VisitRequest(tenant="b"), 0.0)
        # Popping releases the slot.
        queue.pop()
        queue.submit(VisitRequest(tenant="a"), 0.0)
        assert queue.rejections == {"QuotaExceededError": 1}

    def test_spent_deadline_rejected_at_the_door(self):
        queue = AdmissionQueue()
        with pytest.raises(DeadlineExceededError):
            queue.submit(VisitRequest(deadline_ms=0.0), 5.0)
        # A replayed arrival whose budget has already elapsed.
        with pytest.raises(DeadlineExceededError):
            queue.submit(
                VisitRequest(arrival_ms=1.0, deadline_ms=2.0), 10.0
            )
        assert len(queue) == 0
        assert queue.rejections == {"DeadlineExceededError": 2}

    def test_edf_order_with_best_effort_last(self):
        queue = AdmissionQueue()
        queue.submit(VisitRequest(tenant="slack", deadline_ms=50.0), 0.0)
        queue.submit(VisitRequest(tenant="none"), 0.0)  # best-effort
        queue.submit(VisitRequest(tenant="tight", deadline_ms=5.0), 0.0)
        queue.submit(VisitRequest(tenant="mid", deadline_ms=20.0), 0.0)
        order = [queue.pop().tenant for _ in range(4)]
        assert order == ["tight", "mid", "slack", "none"]

    def test_edf_ties_break_on_admission_order(self):
        queue = AdmissionQueue()
        first = queue.submit(VisitRequest(tenant="a", deadline_ms=10.0), 0.0)
        second = queue.submit(VisitRequest(tenant="b", deadline_ms=10.0), 0.0)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_quota_supplies_default_deadline_and_budget(self):
        queue = AdmissionQueue(
            quotas={"t": TenantQuota(deadline_ms=7.0, iteration_budget=3)},
        )
        admitted = queue.submit(VisitRequest(tenant="t"), 1.0)
        assert admitted.deadline_abs == pytest.approx(8.0)
        assert admitted.iteration_budget == 3
        # An explicit request budget wins over the quota's default.
        explicit = queue.submit(
            VisitRequest(tenant="t", deadline_ms=2.0, iteration_budget=9),
            1.0,
        )
        assert explicit.deadline_abs == pytest.approx(3.0)
        assert explicit.iteration_budget == 9


# ----------------------------------------------------------------------
# Pool: checkout / return / shutdown
# ----------------------------------------------------------------------

class TestPool:
    def test_checkout_prefers_least_busy_lane(self, tiny_graph):
        with SessionPool(tiny_graph, size=2) as pool:
            a = pool.checkout()
            assert a.index == 0
            a.busy_until_ms = 10.0
            pool.checkin(a)
            b = pool.checkout()
            assert b.index == 1  # lane 0 is busy until 10 ms

    def test_checkout_exhaustion_and_return(self, tiny_graph):
        with SessionPool(tiny_graph, size=2) as pool:
            a = pool.checkout()
            b = pool.checkout()
            with pytest.raises(QuotaExceededError):
                pool.checkout()
            pool.checkin(a)
            assert pool.checkout() is a
            with pytest.raises(QuotaExceededError):
                pool.checkin(b)  # still checked out: checking in twice
                pool.checkin(b)

    def test_closed_pool_refuses_checkout(self, tiny_graph):
        pool = SessionPool(tiny_graph, size=1)
        pool.close()
        with pytest.raises(SessionClosedError):
            pool.checkout()
        pool.close()  # idempotent

    def test_fault_plan_forces_resilient_workers(self, tiny_graph):
        from repro.resilience import FaultPlan

        with SessionPool(
            tiny_graph, size=1, fault_plan=FaultPlan(),
        ) as pool:
            assert pool.resilient
            assert pool.workers[0].resilient


# ----------------------------------------------------------------------
# Service: dispatch, shedding, shutdown
# ----------------------------------------------------------------------

class TestService:
    def test_call_serves_bfs(self, tiny_graph):
        with TraversalService(tiny_graph) as service:
            resp = service.call(VisitRequest(problem="bfs", source=0))
        assert resp.ok and not resp.shed
        assert resp.labels is not None
        assert resp.latency_ms > 0
        assert resp.worker == 0
        assert resp.placement == "um_prefetch"  # the default memory mode

    def test_deadline_rejection_before_work(self, tiny_graph):
        with TraversalService(tiny_graph) as service:
            with pytest.raises(DeadlineExceededError):
                service.submit(VisitRequest(source=0, deadline_ms=0.0))
            assert service.pool.workers[0].served == 0
            # The batch path converts the refusal into a shed response.
            resp = service.call(VisitRequest(source=0, deadline_ms=0.0))
            assert resp.shed and not resp.ok
            assert "DeadlineExceededError" in resp.error
            assert service.pool.workers[0].served == 0

    def test_queued_deadline_expiry_sheds(self, tiny_graph):
        # One lane, two equally tight deadlines: the first fills the
        # lane past the second's deadline — the second must be shed,
        # not served late.
        with TraversalService(tiny_graph, pool_size=1) as service:
            responses = service.serve([
                VisitRequest(problem="bfs", source=0, tenant="first",
                             deadline_ms=0.05),
                VisitRequest(problem="bfs", source=1, tenant="second",
                             deadline_ms=0.05),
            ])
        first, second = responses
        assert first.ok
        assert second.shed and not second.ok
        assert "DeadlineExceededError" in second.error
        assert second.start_ms == second.finish_ms  # no worker time spent
        assert second.start_ms >= first.finish_ms
        assert service.requests_shed == 1

    def test_edf_dispatch_order(self, tiny_graph):
        with TraversalService(tiny_graph, pool_size=1) as service:
            service.submit(VisitRequest(source=0, tenant="slack",
                                        deadline_ms=1000.0))
            service.submit(VisitRequest(source=1, tenant="best_effort"))
            service.submit(VisitRequest(source=2, tenant="tight",
                                        deadline_ms=100.0))
            responses = service.drain()
        assert [r.tenant for r in responses] == \
            ["tight", "slack", "best_effort"]
        # One lane serves strictly in dispatch order.
        starts = [r.start_ms for r in responses]
        assert starts == sorted(starts)

    def test_two_lanes_run_concurrently(self, skewed_graph):
        with TraversalService(skewed_graph, pool_size=2) as service:
            responses = service.serve([
                VisitRequest(source=0), VisitRequest(source=1),
            ])
        # Both arrive at 0 and start immediately on separate lanes.
        assert {r.worker for r in responses} == {0, 1}
        assert all(r.start_ms == 0.0 for r in responses)

    def test_iteration_budget_is_a_typed_slo_error(self, skewed_graph):
        with TraversalService(skewed_graph) as service:
            resp = service.call(
                VisitRequest(problem="bfs", source=0, iteration_budget=1)
            )
        assert not resp.ok and not resp.shed
        assert "DeadlineExceededError" in resp.error

    def test_clean_shutdown_raises_on_late_requests(self, tiny_graph):
        service = TraversalService(tiny_graph)
        assert service.call(VisitRequest(source=0)).ok
        service.close()
        assert service.closed
        with pytest.raises(SessionClosedError):
            service.submit(VisitRequest(source=0))
        with pytest.raises(SessionClosedError):
            service.serve([VisitRequest(source=0)])
        with pytest.raises(SessionClosedError):
            service.drain()
        service.close()  # idempotent

    def test_serve_reports_earlier_pending_requests_too(self, tiny_graph):
        with TraversalService(tiny_graph) as service:
            service.submit(VisitRequest(source=1, tenant="early"))
            responses = service.serve([VisitRequest(source=0, tenant="batch")])
        assert [r.tenant for r in responses] == ["batch", "early"]

    def test_malformed_request_is_refused_not_crashed(self, tiny_graph):
        with TraversalService(tiny_graph) as service:
            resp = service.call(VisitRequest(source=99))
            assert not resp.ok and "InvalidLaunchError" in resp.error
            with pytest.raises(ConfigError):
                service.submit("not a request")  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Endpoints
# ----------------------------------------------------------------------

class TestEndpoints:
    def test_neighborhood_matches_bfs_levels(self, tiny_graph):
        from repro.core.session import EngineSession

        with TraversalService(tiny_graph) as service:
            resp = service.call(NeighborhoodRequest(source=0, hops=1))
        with EngineSession(tiny_graph) as session:
            levels = session.query("bfs", 0).labels
        want = np.flatnonzero(np.isfinite(levels) & (levels <= 1))
        np.testing.assert_array_equal(resp.value["vertices"], want)
        np.testing.assert_array_equal(
            resp.value["levels"], levels[want].astype(np.int64)
        )

    def test_shortest_path_is_a_real_path(self, skewed_graph):
        from repro.algorithms.paths import verify_path

        with TraversalService(skewed_graph) as service:
            resp = service.call(ShortestPathRequest(source=0, target=5))
        assert resp.ok
        path = resp.value
        assert path[0] == 0 and path[-1] == 5
        assert verify_path(
            skewed_graph, path, resp.result.labels, "bfs"
        )

    def test_unreachable_path_is_typed_error(self, tiny_graph):
        # Vertex 2 has out-degree 0, so nothing is reachable from it.
        with TraversalService(tiny_graph) as service:
            resp = service.call(ShortestPathRequest(source=2, target=0))
        assert not resp.ok and "PathError" in resp.error

    def test_pagerank_and_stats(self, tiny_graph):
        with TraversalService(tiny_graph) as service:
            pr = service.call(PageRankRequest())
            st = service.call(StatsRequest())
        assert pr.ok and len(pr.value) == tiny_graph.num_vertices
        assert np.all(pr.value >= 0)
        assert st.ok
        assert st.value["num_vertices"] == tiny_graph.num_vertices
        assert st.value["num_edges"] == tiny_graph.num_edges
        assert st.service_ms == 0.0  # metadata lookup, no device time


# ----------------------------------------------------------------------
# Telemetry: metrics and spans
# ----------------------------------------------------------------------

class TestTelemetry:
    def test_per_tenant_metrics(self, tiny_graph):
        with TraversalService(tiny_graph) as service:
            service.serve([
                VisitRequest(source=0, tenant="a"),
                VisitRequest(source=1, tenant="a"),
                StatsRequest(tenant="b"),
            ])
            snap = service.metrics.snapshot()
        counters = snap["counters"]
        assert counters["service.requests{endpoint=visit,tenant=a}"] == 2
        assert counters["service.requests{endpoint=stats,tenant=b}"] == 1
        hists = snap["histograms"]
        assert hists["service.latency_ms{endpoint=visit,tenant=a}"]["count"] == 2

    def test_tenant_cardinality_is_bounded(self, tiny_graph):
        with TraversalService(tiny_graph, max_series=4) as service:
            for i in range(12):
                service.call(StatsRequest(tenant=f"tenant-{i}"))
        assert service.metrics.dropped_series > 0
        snap = service.metrics.snapshot()
        per_metric = [
            len([k for k in snap["counters"] if k.startswith(name + "{")])
            for name in ("service.requests",)
        ]
        assert all(n <= 5 for n in per_metric)  # 4 series + overflow fold

    def test_unified_snapshot_service_gauges(self, tiny_graph):
        from repro.observability.metrics import unified_snapshot

        with TraversalService(tiny_graph) as service:
            service.call(VisitRequest(source=0))
            snap = unified_snapshot(service=service)
        gauges = snap["gauges"]
        assert gauges["service.pool_size"] == 2
        assert gauges["service.requests_served"] == 1
        assert gauges["service.requests_shed"] == 0
        assert gauges["service.clock_ms"] > 0

    def test_service_track_spans(self, tiny_graph):
        with TraversalService(
            tiny_graph, pool_size=1, telemetry=True,
        ) as service:
            service.serve([
                VisitRequest(source=0, tenant="a", deadline_ms=0.05),
                VisitRequest(source=1, tenant="b", deadline_ms=0.05),
            ])
            trace = service.trace()
        spans = trace.spans("service", "request")
        # Every admitted request gets a request span now — shed ones
        # included (their tree is queue wait + the shed instant).
        served = [r for r in spans if not r.attrs.get("shed")]
        shed_reqs = [r for r in spans if r.attrs.get("shed")]
        sheds = trace.spans("service", "shed")
        assert len(served) == 1 and len(shed_reqs) == 1 and len(sheds) == 1
        assert served[0].attrs["tenant"] == "a"
        assert served[0].attrs["endpoint"] == "visit"
        assert served[0].attrs["request_id"] == "req-00000"
        assert served[0].duration_ms > 0
        assert sheds[0].attrs["tenant"] == "b"
        assert sheds[0].attrs["request_id"] == "req-00001"
        assert "service" in trace.categories()
        # The request tree nests: queue + dispatch under the request
        # span, engine sub-spans grafted under dispatch.
        kids = trace.children_of(served[0].sid)
        names = [r.name for r in kids]
        assert "queue" in names and "dispatch" in names
        dispatch = next(r for r in kids if r.name == "dispatch")
        grafted = trace.children_of(dispatch.sid)
        assert any(r.category == "engine" for r in grafted)

    def test_telemetry_off_by_default(self, tiny_graph):
        with TraversalService(tiny_graph) as service:
            service.call(VisitRequest(source=0))
            assert service.trace() is None


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------

class TestConfig:
    def test_with_track_parents(self):
        config = EtaGraphConfig()
        assert not config.track_parents
        tracked = config.with_track_parents()
        assert tracked.track_parents
        assert tracked.degree_limit == config.degree_limit
        assert not tracked.with_track_parents(False).track_parents


# ----------------------------------------------------------------------
# Load-generator tenant stats
# ----------------------------------------------------------------------

class TestTenantStats:
    """Regressions for the serve-bench percentile bugs: an all-shed
    tenant used to crash ``np.percentile`` on an empty list, and linear
    interpolation reported latencies nobody observed."""

    @staticmethod
    def _response(tenant, *, ok, shed=False, latency_ms=0.0,
                  degraded=False):
        from types import SimpleNamespace

        return SimpleNamespace(
            tenant=tenant, ok=ok, shed=shed, latency_ms=latency_ms,
            degraded=degraded,
        )

    def test_all_shed_tenant_reports_none(self):
        from repro.serving.loadgen import _tenant_stats

        responses = [
            self._response("hot", ok=False, shed=True) for _ in range(5)
        ]
        stats = _tenant_stats(responses, "hot")
        assert stats["requests"] == 5
        assert stats["served"] == 0
        assert stats["shed"] == 5
        assert stats["shed_rate"] == 1.0
        # None, never a fabricated 0.0 (and never an exception).
        assert stats["p50_ms"] is None
        assert stats["p95_ms"] is None
        assert stats["p99_ms"] is None

    def test_percentiles_are_observed_samples(self):
        from repro.serving.loadgen import _tenant_stats

        latencies = [1.0, 2.0, 7.0, 40.0]
        responses = [
            self._response("t", ok=True, latency_ms=l) for l in latencies
        ]
        stats = _tenant_stats(responses, "t")
        # method="nearest": every percentile is an element of the
        # sample, not an interpolated value (linear p50 here is 4.5).
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            assert stats[key] in latencies
        assert stats["p50_ms"] == 7.0
        assert stats["p99_ms"] == 40.0

    def test_stats_isolate_tenants(self):
        from repro.serving.loadgen import _tenant_stats

        responses = [
            self._response("a", ok=True, latency_ms=3.0),
            self._response("b", ok=False, shed=True),
            self._response("a", ok=False, shed=False, degraded=True),
        ]
        stats = _tenant_stats(responses, "a")
        assert stats["requests"] == 2
        assert stats["served"] == 1
        assert stats["shed"] == 0
        assert stats["errors"] == 1
        assert stats["degraded"] == 1
        assert stats["p50_ms"] == 3.0

    def test_run_serve_renders_all_shed_tenant(self):
        """End to end: a tenant whose every request arrives with a spent
        deadline produces a rendered row ('-' cells), not a crash."""
        from repro.serving.loadgen import (
            LoadSettings, TenantProfile, run_serve,
        )

        doomed = TenantProfile(
            name="doomed",
            endpoints=(("visit", 1.0),),
            deadline_ms=0.0,
            think_ms=0.0,
            quota=TenantQuota(max_pending=8),
        )
        settings = LoadSettings(
            graph="livejournal", pool_size=1, client_counts=(2,),
            requests_per_client=2, mix=(doomed,),
        )
        report = run_serve(settings=settings)
        stats = report.data["clients_2"]["doomed"]
        assert stats["served"] == 0
        assert stats["p50_ms"] is None
        assert "doomed" in report.text and "-" in report.text


# ----------------------------------------------------------------------
# Lane accounting and response bookkeeping
# ----------------------------------------------------------------------

class TestLaneAccounting:
    def test_poisoned_lane_never_leaks_from_the_pool(self, tiny_graph):
        """An untyped crash mid-serve must check the lane back in and
        leave pool capacity intact (the try/finally dispatch contract)."""
        with TraversalService(tiny_graph, pool_size=2) as service:
            worker = service.pool.workers[0]
            original = worker.session.query

            def poisoned(*args, **kwargs):
                raise RuntimeError("poisoned lane")

            worker.session.query = poisoned
            try:
                with pytest.raises(RuntimeError):
                    service.call(VisitRequest(source=0))
                assert service.pool.size == 2
                assert not any(
                    w.checked_out for w in service.pool.workers
                )
            finally:
                worker.session.query = original
            # The pool still serves: no lane was lost to the crash.
            assert service.call(VisitRequest(source=0)).ok

    def test_drain_returns_edf_dispatch_order(self, tiny_graph):
        with TraversalService(tiny_graph, pool_size=1) as service:
            service.submit(VisitRequest(source=0))
            service.submit(VisitRequest(source=1, deadline_ms=50.0))
            service.submit(VisitRequest(source=2, deadline_ms=10.0))
            responses = service.drain()
        # Tightest deadline first, best-effort last; one response each.
        assert [r.seq for r in responses] == [2, 1, 0]
        assert all(r.ok for r in responses)

    def test_serve_returns_submission_order(self, tiny_graph):
        with TraversalService(tiny_graph, pool_size=2) as service:
            requests = [
                VisitRequest(source=0),
                VisitRequest(source=1, deadline_ms=25.0),
                VisitRequest(source=2),
                VisitRequest(source=3, deadline_ms=5.0),
            ]
            responses = service.serve(requests)
        # EDF reorders dispatch, but the batch's responses come back in
        # submission order, one terminal response per request.
        assert [r.request.source for r in responses] == [0, 1, 2, 3]
        assert [r.seq for r in responses] == [0, 1, 2, 3]

    def test_served_plus_shed_conservation(self, skewed_graph):
        with TraversalService(
            skewed_graph, pool_size=2, wave_width=4,
            default_quota=TenantQuota(max_pending=64),
        ) as service:
            requests = []
            for i in range(30):
                if i % 5 == 4:
                    # Hair-trigger deadline on a non-wave-eligible
                    # problem: whatever misses a free lane at t=0 must
                    # shed (BFS visits would coalesce into one wave at
                    # t=0 and all meet the deadline).
                    requests.append(VisitRequest(
                        problem="cc", source=i, deadline_ms=0.001,
                    ))
                elif i % 5 == 3:
                    requests.append(NeighborhoodRequest(source=i, hops=2))
                else:
                    requests.append(VisitRequest(source=i))
            responses = service.serve(requests)
            assert len(responses) == 30
            assert sorted(r.seq for r in responses) == list(range(30))
            # Every admitted request is answered-or-shed exactly once.
            assert service.requests_served + service.requests_shed == 30
            shed = [r for r in responses if r.shed]
            assert shed
            assert service.requests_shed == len(shed)
            assert all(not r.ok and r.error for r in shed)
