"""End-to-end tests of the EtaGraph engine: functional exactness against
the CPU oracles, ablation behaviour, statistics and UM interaction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import EtaGraph, EtaGraphConfig, MemoryMode
from repro.algorithms import cpu_reference
from repro.core.engine import EtaGraphEngine
from repro.errors import ConfigError, ConvergenceError
from repro.gpu.device import GTX_1080TI
from repro.graph import generators, properties
from repro.graph.weights import attach_weights
from repro.utils.units import KIB


def oracle(graph, source, problem):
    return cpu_reference.reference_labels(graph, source, problem)


@pytest.fixture(scope="module")
def social():
    g = attach_weights(generators.rmat(10, 12000, seed=7), seed=8)
    src = int(np.argmax(g.out_degrees()))
    return g, src


class TestCorrectness:
    @pytest.mark.parametrize("problem", ["bfs", "sssp", "sswp"])
    def test_matches_oracle_on_social(self, social, problem):
        g, src = social
        result = EtaGraph(g).run(problem, src)
        assert np.allclose(result.labels, oracle(g, src, problem))

    @pytest.mark.parametrize("problem", ["bfs", "sssp", "sswp"])
    @pytest.mark.parametrize(
        "mode", [MemoryMode.UM_PREFETCH, MemoryMode.UM_ON_DEMAND,
                 MemoryMode.DEVICE]
    )
    def test_memory_modes_do_not_change_labels(self, social, problem, mode):
        g, src = social
        cfg = EtaGraphConfig(memory_mode=mode)
        result = EtaGraph(g, cfg).run(problem, src)
        assert np.allclose(result.labels, oracle(g, src, problem))

    @pytest.mark.parametrize("smp", [True, False])
    def test_smp_does_not_change_labels(self, social, smp):
        g, src = social
        result = EtaGraph(g, EtaGraphConfig(smp=smp)).bfs(src)
        assert np.array_equal(result.labels, oracle(g, src, "bfs"))

    @given(k=st.sampled_from([1, 2, 3, 7, 16, 64, 1000]))
    @settings(max_examples=7, deadline=None)
    def test_degree_limit_invariance(self, k):
        """Theorem 2: traversal through shadow vertices is identical to
        traversal through original vertices, for any K."""
        g = attach_weights(generators.rmat(8, 2500, seed=3), seed=4)
        src = int(np.argmax(g.out_degrees()))
        result = EtaGraph(g, EtaGraphConfig(degree_limit=k)).sssp(src)
        assert np.allclose(result.labels, oracle(g, src, "sssp"))

    def test_path_graph(self):
        g = generators.path_graph(30)
        result = EtaGraph(g).bfs(0)
        assert list(result.labels) == list(range(30))
        assert result.iterations == 30  # 29 expanding + 1 empty-check pass

    def test_star_graph_single_iteration_work(self):
        g = generators.star_graph(100)
        result = EtaGraph(g).bfs(0)
        assert result.stats.iterations[0].edges_scanned == 100
        assert np.all(result.labels[1:] == 1)

    def test_unreachable_source_region(self):
        g = generators.star_graph(10, out=False)  # hub 0 has no out-edges
        result = EtaGraph(g).bfs(0)
        assert result.visited == 1
        assert result.iterations == 1

    def test_source_out_of_range(self, social):
        g, _ = social
        from repro.errors import InvalidLaunchError
        with pytest.raises(InvalidLaunchError):
            EtaGraph(g).bfs(g.num_vertices + 5)

    def test_weighted_required_for_sssp(self):
        g = generators.rmat(7, 500, seed=1)
        with pytest.raises(ConfigError):
            EtaGraph(g).sssp(0)

    def test_max_iterations_enforced(self):
        g = attach_weights(generators.cycle_graph(50), kind="unit")
        cfg = EtaGraphConfig(max_iterations=3)
        with pytest.raises(ConvergenceError):
            EtaGraph(g, cfg).bfs(0)


class TestStatsAndResult:
    def test_bfs_iterations_is_depth_plus_one(self, social):
        g, src = social
        result = EtaGraph(g).bfs(src)
        depth = properties.bfs_depth(g, src)
        # Final iteration discovers nothing and empties the frontier.
        assert result.iterations == depth + 1

    def test_activation_matches_reachability(self, social):
        g, src = social
        result = EtaGraph(g).bfs(src)
        assert result.stats.activation_fraction() == pytest.approx(
            properties.activation_fraction(g, src)
        )

    def test_visited_counts_match_labels(self, social):
        g, src = social
        result = EtaGraph(g).bfs(src)
        assert result.visited == int(np.isfinite(result.labels).sum())

    def test_edges_scanned_bounded_by_total(self, social):
        g, src = social
        result = EtaGraph(g).bfs(src)
        # BFS activates each vertex once: scanned <= |E|.
        assert result.stats.total_edges_scanned <= g.num_edges

    def test_total_time_composition(self, social):
        g, src = social
        result = EtaGraph(g).bfs(src)
        assert result.total_ms > 0
        assert result.kernel_ms > 0
        assert result.d2h_ms > 0

    def test_cumulative_active_fraction_reaches_one(self, social):
        g, src = social
        result = EtaGraph(g).bfs(src)
        assert result.stats.cumulative_active_fraction()[-1] == pytest.approx(1.0)

    def test_reachable_from(self, social):
        g, src = social
        mask = EtaGraph(g).reachable_from(src)
        assert mask.sum() == properties.reachable_mask(g, src).sum()


class TestMemoryBehaviour:
    def test_prefetch_transfers_whole_topology(self, social):
        g, src = social
        result = EtaGraph(g).bfs(src)
        topo_bytes = g.row_offsets.nbytes + g.column_indices.nbytes
        moved = sum(result.profiler.migration_sizes)
        # Page granularity rounds up.
        assert moved >= topo_bytes
        assert moved <= topo_bytes + 2 * 4096 * 2

    def test_on_demand_transfers_only_touched(self):
        """The uk-2006 effect: a source confined to a tiny pocket touches
        almost none of the graph, so on-demand beats prefetch."""
        g = generators.web_chain(20_000, 200_000, depth=10, pocket_size=30,
                                 pocket_depth=3, seed=9)
        on_demand = EtaGraph(
            g, EtaGraphConfig(memory_mode=MemoryMode.UM_ON_DEMAND)
        ).bfs(0)
        prefetch = EtaGraph(g).bfs(0)
        # Page granularity + permuted vertex ids make the touched set a
        # few dozen scattered pages; still a small fraction of the graph.
        assert sum(on_demand.profiler.migration_sizes) < 0.25 * sum(
            prefetch.profiler.migration_sizes
        )

    def test_prefetch_beats_on_demand_on_full_traversals(self, social):
        g, src = social
        t_pref = EtaGraph(g).bfs(src).total_ms
        t_demand = EtaGraph(
            g, EtaGraphConfig(memory_mode=MemoryMode.UM_ON_DEMAND)
        ).bfs(src).total_ms
        assert t_pref < t_demand

    def test_on_demand_overlaps_transfer_and_compute(self, social):
        g, src = social
        result = EtaGraph(
            g, EtaGraphConfig(memory_mode=MemoryMode.UM_ON_DEMAND)
        ).bfs(src)
        assert result.timeline.overlap_ms() > 0

    def test_oversubscription_flag(self):
        g = generators.rmat(9, 8000, seed=2)
        tiny = GTX_1080TI.with_capacity(16 * KIB)
        result = EtaGraphEngine(g, EtaGraphConfig(), tiny).run("bfs", 0)
        assert result.oversubscribed
        assert np.array_equal(result.labels, oracle(g, 0, "bfs"))

    def test_device_mode_ooms_when_too_small(self):
        from repro.errors import DeviceOutOfMemoryError
        g = generators.rmat(9, 8000, seed=2)
        tiny = GTX_1080TI.with_capacity(16 * KIB)
        cfg = EtaGraphConfig(memory_mode=MemoryMode.DEVICE)
        with pytest.raises(DeviceOutOfMemoryError):
            EtaGraphEngine(g, cfg, tiny).run("bfs", 0)

    def test_smp_speeds_up_kernels(self):
        g = generators.rmat(12, 120_000, seed=5)
        src = int(np.argmax(g.out_degrees()))
        with_smp = EtaGraph(g).bfs(src)
        without = EtaGraph(g, EtaGraphConfig(smp=False)).bfs(src)
        assert with_smp.kernel_ms < without.kernel_ms
        c_smp = with_smp.profiler.kernels
        c_no = without.profiler.kernels
        assert c_smp.global_load_transactions < c_no.global_load_transactions
        assert c_smp.ipc > c_no.ipc
