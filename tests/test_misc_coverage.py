"""Edge-case tests for corners the feature suites do not reach."""

import numpy as np
import pytest

from repro.gpu.cache import CacheHierarchy
from repro.gpu.device import GTX_1080TI
from repro.gpu.kernel import simulate_streaming_kernel, simulate_vertex_kernel
from repro.gpu.memory import DeviceMemory
from repro.gpu.um import UnifiedMemoryManager
from repro.graph import generators
from repro.graph.weights import (
    degree_correlated_weights,
    uniform_int_weights,
)
from repro.errors import ConfigError
from repro.utils.units import KIB, MIB


class TestKernelTimingDetails:
    def _launch(self, **kw):
        mem = DeviceMemory(GTX_1080TI)
        n = 64
        degrees = np.full(n, 4, dtype=np.int64)
        starts = np.arange(n, dtype=np.int64) * 4
        adj = mem.alloc("adj", np.zeros(n * 4, dtype=np.int32))
        labels = mem.alloc("labels", np.zeros(n, dtype=np.float32))
        return simulate_vertex_kernel(
            GTX_1080TI, CacheHierarchy(GTX_1080TI),
            starts=starts, degrees=degrees, adj_array=adj,
            neighbor_ids=np.zeros(n * 4, dtype=np.int64),
            label_array=labels, **kw,
        )

    def test_bound_by_reports_a_component(self):
        t = self._launch()
        assert t.bound_by in ("compute", "dram", "l2")

    def test_time_components_consistent(self):
        t = self._launch()
        assert t.time_ms == pytest.approx(
            t.launch_ms + max(t.compute_ms, t.dram_ms, t.l2_ms)
        )

    def test_streaming_kernel_scatter_sampling(self):
        """Scatter traces above the cap are subsampled, counts rescaled."""
        from repro.gpu.kernel import TRACE_CAP
        idx = np.arange(TRACE_CAP * 2) * 16
        t = simulate_streaming_kernel(
            GTX_1080TI, CacheHierarchy(GTX_1080TI),
            read_bytes=0, write_bytes=0, n_threads=1000,
            scatter_base_address=0, scatter_indices=idx,
        )
        assert t.counters.global_load_transactions >= TRACE_CAP


class TestWeights:
    def test_uniform_range(self):
        w = uniform_int_weights(1000, low=2, high=5, seed=1)
        assert w.min() >= 2 and w.max() < 5
        assert w.dtype == np.float32

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ConfigError):
            uniform_int_weights(10, low=0)
        with pytest.raises(ConfigError):
            uniform_int_weights(10, low=5, high=5)

    def test_degree_correlated_positive(self):
        g = generators.rmat(8, 2000, seed=2)
        w = degree_correlated_weights(g, seed=3)
        assert len(w) == g.num_edges
        assert w.min() >= 1

    def test_degree_correlated_hubs_get_cheaper_edges(self):
        g = generators.star_graph(200) .reverse()  # all edges into hub 0
        # Build a graph where some edges point at the hub and some at leaves.
        from repro.graph.csr import CSRGraph
        src = np.zeros(100, dtype=np.int64)
        dst = np.concatenate([np.zeros(50), np.arange(50, 100)]).astype(np.int64)
        g2 = CSRGraph.from_edges(
            np.concatenate([src, [1]]), np.concatenate([dst, [2]]),
            num_vertices=101, dedup=False,
        )
        w = degree_correlated_weights(g2, seed=4)
        assert np.isfinite(w).all()

    def test_attach_weights_unknown_kind(self):
        from repro.graph.weights import attach_weights
        g = generators.path_graph(3)
        with pytest.raises(ConfigError):
            attach_weights(g, kind="prime")


class TestUMCornerCases:
    def test_prefetch_with_eviction(self):
        """Prefetching an allocation larger than the budget evicts as it
        goes and leaves residency at the budget."""
        spec = GTX_1080TI.with_capacity(64 * KIB)
        mem = DeviceMemory(spec)
        um = UnifiedMemoryManager(spec, mem)
        arr = mem.alloc("big", np.zeros(1 * MIB, dtype=np.uint8), kind="um")
        um.register(arr)
        batch = um.prefetch(arr)
        assert batch.bytes_moved == 1 * MIB
        assert um.total_resident_pages <= um.resident_budget_pages + \
            batch.bytes_moved // spec.page_bytes

    def test_empty_touch(self):
        spec = GTX_1080TI
        mem = DeviceMemory(spec)
        um = UnifiedMemoryManager(spec, mem)
        arr = mem.alloc("a", np.zeros(8192, dtype=np.uint8), kind="um")
        um.register(arr)
        batch = um.touch(arr, np.empty(0, dtype=np.int64))
        assert batch.bytes_moved == 0

    def test_resident_bytes(self):
        spec = GTX_1080TI
        mem = DeviceMemory(spec)
        um = UnifiedMemoryManager(spec, mem)
        arr = mem.alloc("a", np.zeros(5 * 4096, dtype=np.uint8), kind="um")
        um.register(arr)
        um.touch(arr, np.array([0, 2]))
        assert um.resident_bytes() == 2 * 4096


class TestEngineCornerCases:
    def test_source_with_self_component_only(self):
        """Source whose only edge is to itself-like tiny cycle."""
        g = generators.cycle_graph(3)
        from repro import EtaGraph
        r = EtaGraph(g).bfs(0)
        assert list(r.labels) == [0, 1, 2]

    def test_two_vertex_graph(self):
        from repro import EtaGraph
        from repro.graph.csr import CSRGraph
        g = CSRGraph.from_edges([0], [1], num_vertices=2)
        r = EtaGraph(g).bfs(0)
        assert list(r.labels) == [0, 1]

    def test_repr_strings(self):
        from repro import EtaGraph
        g = generators.path_graph(4)
        eta = EtaGraph(g)
        assert "EtaGraph" in repr(eta)
        result = eta.bfs(0)
        assert "TraversalResult" in repr(result)

    def test_profiler_throughput_zero_elapsed(self):
        from repro.gpu.profiler import KernelCounters
        c = KernelCounters()
        assert c.l2_read_throughput_gbps == 0.0
        assert c.unified_read_throughput_gbps == 0.0
