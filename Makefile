# Convenience targets for the EtaGraph reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full reproduce examples clean-cache

install:
	$(PYTHON) -m pip install -e .[test]

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Regenerate every table and figure and save machine-readable reports.
reproduce:
	$(PYTHON) -m repro.bench all --json-dir reports/

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

# Drop the surrogate dataset cache (~/.cache/repro or $$REPRO_DATA_DIR).
clean-cache:
	rm -rf $${REPRO_DATA_DIR:-$$HOME/.cache/repro}
