#!/usr/bin/env python
"""Inspect the memory system with the built-in nvprof-style profiler.

Runs BFS with and without Shared Memory Prefetch and prints the counter
deltas — the same analysis as the paper's Fig. 7 — plus a per-kernel
breakdown showing *where* SMP's transaction savings come from.

Run: ``python examples/profiling_smp.py``
"""

import numpy as np

from repro import EtaGraph, EtaGraphConfig
from repro.graph import generators
from repro.utils.tables import render_table


def main() -> None:
    graph = generators.social_network(30_000, 450_000, seed=3)
    source = int(np.argmax(graph.out_degrees()))
    print(f"graph: {graph}")

    with_smp = EtaGraph(graph).bfs(source)
    without = EtaGraph(graph, EtaGraphConfig(smp=False)).bfs(source)
    assert np.array_equal(with_smp.labels, without.labels)

    a, b = with_smp.profiler.kernels, without.profiler.kernels
    rows = [
        ["ipc", f"{b.ipc:.2f}", f"{a.ipc:.2f}", f"{a.ipc / b.ipc:.2f}x"],
        ["unified cache hit rate", f"{b.unified_hit_rate:.3f}",
         f"{a.unified_hit_rate:.3f}",
         f"{a.unified_hit_rate / b.unified_hit_rate:.2f}x"],
        ["L2 hit rate", f"{b.l2_hit_rate:.3f}", f"{a.l2_hit_rate:.3f}",
         f"{a.l2_hit_rate / b.l2_hit_rate:.2f}x"],
        ["global load transactions", f"{b.global_load_transactions:,}",
         f"{a.global_load_transactions:,}",
         f"{a.global_load_transactions / b.global_load_transactions:.2f}x"],
        ["DRAM read", f"{b.dram_read_bytes / 2**20:.1f} MiB",
         f"{a.dram_read_bytes / 2**20:.1f} MiB",
         f"{a.dram_read_bytes / b.dram_read_bytes:.2f}x"],
        ["shared-memory traffic", f"{b.shared_load_bytes / 2**20:.1f} MiB",
         f"{a.shared_load_bytes / 2**20:.1f} MiB", "-"],
        ["kernel time", f"{without.kernel_ms:.3f} ms",
         f"{with_smp.kernel_ms:.3f} ms",
         f"{without.kernel_ms / with_smp.kernel_ms:.2f}x faster"],
    ]
    print(render_table(
        ["metric", "w/o SMP", "with SMP", "SMP effect"],
        rows,
        title="Shared Memory Prefetch, profiled (BFS)",
    ))

    print("\nper-iteration kernel times (with SMP):")
    for it in with_smp.stats.iterations[:8]:
        bar = "#" * max(1, int(it.edges_scanned / 8000))
        print(f"  iter {it.index}: {it.kernel_ms * 1e3:7.1f} us "
              f"{it.edges_scanned:>8} edges {bar}")


if __name__ == "__main__":
    main()
