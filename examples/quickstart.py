#!/usr/bin/env python
"""Quickstart: build a graph, run the three traversal algorithms.

Demonstrates the minimal EtaGraph workflow:

1. build (or load) a CSR graph,
2. attach edge weights for the weighted algorithms,
3. run BFS / SSSP / SSWP through the :class:`repro.EtaGraph` API,
4. inspect labels and the simulated performance record.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import EtaGraph
from repro.graph import generators
from repro.graph.weights import attach_weights
from repro.utils.units import format_ms


def main() -> None:
    # A small skewed social-network-like graph (RMAT, the paper's
    # synthetic generator family).
    graph = generators.rmat(scale=12, num_edges=120_000, seed=42)
    graph = attach_weights(graph, kind="uniform", seed=7)
    print(f"graph: {graph}")
    print(f"max out-degree: {graph.max_out_degree()} "
          f"(avg {graph.average_degree:.1f}) — skewed, as UDC expects")

    # Query from the biggest hub so the traversal is non-trivial.
    source = int(np.argmax(graph.out_degrees()))
    eta = EtaGraph(graph)

    bfs = eta.bfs(source)
    reachable = int(np.isfinite(bfs.labels).sum())
    print(f"\nBFS from {source}: {bfs.iterations} iterations, "
          f"{reachable}/{graph.num_vertices} vertices reached, "
          f"max level {int(bfs.labels[np.isfinite(bfs.labels)].max())}")
    print(f"  simulated time: {format_ms(bfs.total_ms)} "
          f"(kernels {format_ms(bfs.kernel_ms)})")

    sssp = eta.sssp(source)
    finite = sssp.labels[np.isfinite(sssp.labels)]
    print(f"\nSSSP: mean distance {finite.mean():.1f}, "
          f"max {finite.max():.0f}, {sssp.iterations} iterations")

    sswp = eta.sswp(source)
    widths = sswp.labels[(sswp.labels > 0) & np.isfinite(sswp.labels)]
    print(f"SSWP: mean path width {widths.mean():.1f}, "
          f"{sswp.iterations} iterations")

    # The per-iteration record behind the paper's Fig. 2 / Fig. 5.
    print("\nfirst five BFS iterations (active -> shadow vertices, edges):")
    for it in bfs.stats.iterations[:5]:
        print(f"  iter {it.index}: {it.active_vertices:>6} active -> "
              f"{it.shadow_vertices:>6} shadows, "
              f"{it.edges_scanned:>7} edges, {format_ms(it.kernel_ms)}")


if __name__ == "__main__":
    main()
