#!/usr/bin/env python
"""Graphs larger than GPU memory: Unified Memory oversubscription.

Reproduces the paper's uk-2006 story: the topology does not fit in device
memory, every cudaMalloc-based framework (and EtaGraph's own "w/o UM"
ablation) dies with O.O.M, but UM oversubscription + on-demand migration
lets EtaGraph traverse it — and when the queried source only reaches a
tiny pocket of the graph, *not* prefetching is the fastest strategy of
all, because almost nothing needs to cross PCIe.

Run: ``python examples/oversubscription.py``
"""

import numpy as np

from repro import EtaGraph, EtaGraphConfig, MemoryMode
from repro.errors import DeviceOutOfMemoryError
from repro.gpu.device import GTX_1080TI
from repro.graph import generators
from repro.utils.units import format_bytes, format_ms


def main() -> None:
    # A web-crawl-like graph with the query source inside a 40-vertex
    # disconnected pocket (the uk-2006 situation, Table IV's 1.15e-4
    # activation).
    graph = generators.web_chain(
        300_000, 3_000_000, depth=30, pocket_size=40, pocket_depth=4, seed=1
    )
    topo_bytes = graph.nbytes
    # A device that cannot hold the topology: 60% of its size.
    device = GTX_1080TI.with_capacity(int(topo_bytes * 0.6))
    print(f"graph: {graph} ({format_bytes(topo_bytes)} topology)")
    print(f"device capacity: {format_bytes(device.memory_capacity)} "
          "-> graph does NOT fit\n")

    # Plain device memory: allocation fails outright.
    try:
        EtaGraph(graph, EtaGraphConfig(memory_mode=MemoryMode.DEVICE),
                 device).bfs(0)
        raise AssertionError("expected O.O.M")
    except DeviceOutOfMemoryError as exc:
        print(f"w/o UM       : O.O.M as expected ({exc})")

    # UM with prefetch: runs, but streams (and evicts) the whole graph.
    prefetch = EtaGraph(graph, EtaGraphConfig(), device).bfs(0)
    moved = sum(prefetch.profiler.migration_sizes)
    print(f"UM + prefetch: {format_ms(prefetch.total_ms)}, "
          f"moved {format_bytes(moved)} "
          f"(oversubscribed={prefetch.oversubscribed})")

    # UM on demand: only the pocket's pages migrate.
    on_demand = EtaGraph(
        graph, EtaGraphConfig(memory_mode=MemoryMode.UM_ON_DEMAND), device
    ).bfs(0)
    moved = sum(on_demand.profiler.migration_sizes)
    print(f"UM on-demand : {format_ms(on_demand.total_ms)}, "
          f"moved {format_bytes(moved)} "
          f"({int(np.isfinite(on_demand.labels).sum())} vertices visited)")

    speedup = prefetch.total_ms / on_demand.total_ms
    print(f"\non-demand speedup over prefetch: {speedup:.1f}x "
          "(the paper's uk-2006 row: 1.3 ms vs 1661 ms)")
    assert np.array_equal(prefetch.labels, on_demand.labels)


if __name__ == "__main__":
    main()
