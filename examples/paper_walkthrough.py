#!/usr/bin/env python
"""The paper's three mechanisms, demonstrated one at a time.

EtaGraph = UDC + frontier-over-UM + SMP.  This walkthrough isolates each
mechanism on one skewed graph and prints the quantity it improves:

1. **UDC** — warp efficiency: useful lane-cycles / issued lane-cycles
   with and without the degree cut;
2. **SMP** — global load transactions and IPC with and without prefetch;
3. **UM**  — total time across the four memory placements.

Run: ``python examples/paper_walkthrough.py``
"""

import numpy as np

from repro import EtaGraph, EtaGraphConfig, MemoryMode
from repro.core.udc import degree_cut
from repro.gpu.warp import warp_efficiency
from repro.graph import generators
from repro.utils.charts import bar_chart


def main() -> None:
    graph = generators.social_network(25_000, 400_000, seed=33)
    source = int(np.argmax(graph.out_degrees()))
    deg = graph.out_degrees()
    print(f"graph: {graph}")
    print(f"degree skew: mean {deg.mean():.1f}, p99 "
          f"{np.percentile(deg, 99):.0f}, max {deg.max()}\n")

    # --- 1. Unified Degree Cut ------------------------------------------
    print("1) UDC: bounded shadow vertices fix warp lockstep imbalance")
    active = np.flatnonzero(deg > 0)
    raw_eff = warp_efficiency(deg[active].astype(float))
    for k in (8, 32, 128):
        shadows = degree_cut(active, graph.row_offsets, k)
        eff = warp_efficiency(shadows.degrees.astype(float))
        print(f"   K={k:<4} {len(shadows):>7} shadows, "
              f"warp efficiency {eff:.2f} (raw vertices: {raw_eff:.2f})")

    # --- 2. Shared Memory Prefetch --------------------------------------
    print("\n2) SMP: unrolled bursts halve global transactions")
    with_smp = EtaGraph(graph).bfs(source)
    without = EtaGraph(graph, EtaGraphConfig(smp=False)).bfs(source)
    a, b = with_smp.profiler.kernels, without.profiler.kernels
    print(f"   transactions: {b.global_load_transactions:>9,} -> "
          f"{a.global_load_transactions:,} "
          f"({a.global_load_transactions / b.global_load_transactions:.2f}x)")
    print(f"   IPC:          {b.ipc:9.2f} -> {a.ipc:.2f} "
          f"({a.ipc / b.ipc:.2f}x)")
    print(f"   kernel time:  {without.kernel_ms:9.3f} -> "
          f"{with_smp.kernel_ms:.3f} ms")

    # --- 3. Memory placement --------------------------------------------
    print("\n3) UM: placement vs total (transfer + kernel) time")
    totals = {}
    for mode in MemoryMode:
        cfg = EtaGraphConfig(memory_mode=mode)
        totals[mode.value] = EtaGraph(graph, cfg).bfs(source).total_ms
    print(bar_chart(
        list(totals.values()),
        labels=list(totals.keys()),
        width=36,
    ))
    print("\n(um_prefetch is EtaGraph; um_on_demand is 'w/o UMP'; device "
          "is 'w/o UM'; zero_copy is Section IV-B's rejected alternative)")


if __name__ == "__main__":
    main()
