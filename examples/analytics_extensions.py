#!/usr/bin/env python
"""Beyond the paper's three algorithms: CC, delta-PageRank, DOBFS.

The framework generalizes past BFS/SSSP/SSWP:

* **connected components** — the all-active member of the traversal
  family (every vertex starts in the frontier);
* **delta PageRank** — Section II-C's contrast case ("PageRank-like
  algorithms update all vertices every iteration") turned into an
  active-set algorithm via residual pushing;
* **direction-optimized BFS** — Beamer's push/pull hybrid on UDC
  machinery, with pull phases over the CSC.

Run: ``python examples/analytics_extensions.py``
"""

import numpy as np

from repro import EtaGraph
from repro.algorithms.cc import weakly_connected_components
from repro.core.dobfs import direction_optimized_bfs
from repro.core.pagerank import delta_pagerank
from repro.graph import generators
from repro.utils.units import format_ms


def main() -> None:
    graph = generators.social_network(20_000, 300_000, seed=9)
    hub = int(np.argmax(graph.out_degrees()))
    print(f"graph: {graph}\n")

    # --- connected components -----------------------------------------
    comp = weakly_connected_components(graph)
    sizes = np.bincount(comp)
    sizes = sizes[sizes > 0]
    print(f"components: {len(sizes)} total, largest covers "
          f"{100 * sizes.max() / graph.num_vertices:.1f}% of vertices")

    # --- delta PageRank -------------------------------------------------
    pr = delta_pagerank(graph, tolerance=1e-6)
    top = pr.top_vertices(5)
    print(f"\npagerank: {pr.iterations} rounds, "
          f"{format_ms(pr.total_ms)} simulated")
    print(f"  top vertices: {top.tolist()}")
    print(f"  active-set decay: {pr.active_history[:6]} ...")

    # --- direction-optimized BFS ----------------------------------------
    plain = EtaGraph(graph).bfs(hub)
    hybrid = direction_optimized_bfs(graph, hub)
    assert np.array_equal(plain.labels, hybrid.labels)
    print(f"\nBFS from hub {hub}: plain kernels {format_ms(plain.kernel_ms)}, "
          f"hybrid {format_ms(hybrid.kernel_ms)} "
          f"({plain.kernel_ms / hybrid.kernel_ms:.2f}x)")
    print(f"  schedule: {hybrid.directions}")


if __name__ == "__main__":
    main()
