#!/usr/bin/env python
"""Compare EtaGraph against the CuSha / Gunrock / Tigr baselines.

Reproduces the spirit of the paper's Table III on one social-network
surrogate: every framework computes identical labels (they share the
label-propagation semantics) while kernel and total times differ by
execution model.

Run: ``python examples/framework_comparison.py [dataset]``
"""

import sys

import numpy as np

from repro import EtaGraph, EtaGraphConfig, MemoryMode
from repro.baselines import get_framework
from repro.bench.workloads import bench_device
from repro.errors import DeviceOutOfMemoryError
from repro.graph import datasets
from repro.utils.tables import render_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "livejournal"
    device = bench_device()
    graph, source = datasets.load(name, weighted=True)
    print(f"dataset: {name} -> {graph}, source {source}")
    print(f"device: {device.name}, capacity scaled to "
          f"{device.memory_capacity / 2**20:.0f} MiB\n")

    rows = []
    reference = None
    for fw_name in ("cusha", "gunrock", "tigr"):
        fw = get_framework(fw_name, device)
        try:
            r = fw.run(graph, "sssp", source)
        except DeviceOutOfMemoryError:
            rows.append([fw_name, "O.O.M", "O.O.M", "-", "-"])
            continue
        reference = r.labels if reference is None else reference
        assert np.allclose(r.labels, reference), "engines disagree!"
        rows.append([fw_name, f"{r.kernel_ms:.3f}", f"{r.total_ms:.3f}",
                     r.iterations, f"{r.device_bytes / 2**20:.1f} MiB"])

    for label, cfg in (
        ("etagraph", EtaGraphConfig()),
        ("etagraph w/o UMP",
         EtaGraphConfig(memory_mode=MemoryMode.UM_ON_DEMAND)),
    ):
        r = EtaGraph(graph, cfg, device).sssp(source)
        if reference is not None:
            assert np.allclose(r.labels, reference), "engines disagree!"
        rows.append([label, f"{r.kernel_ms:.3f}", f"{r.total_ms:.3f}",
                     r.iterations,
                     f"{(r.device_bytes + r.um_bytes) / 2**20:.1f} MiB"])

    print(render_table(
        ["framework", "kernel ms", "total ms", "iterations", "footprint"],
        rows,
        title=f"SSSP on {name} (all engines produce identical labels)",
    ))


if __name__ == "__main__":
    main()
