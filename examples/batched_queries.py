#!/usr/bin/env python
"""Amortizing data transfer across a batch of traversal queries.

Data transfer "often dominates the total time" (Section I); once the
topology is resident in Unified Memory, additional queries pay only
their kernels.  This example opens a topology-resident
:class:`EngineSession`, runs a batch of BFS queries against it, and
compares the *measured* warm timings against launching each query
standalone — then contrasts EtaGraph's on-demand migration with a
GTS-style fixed-chunk streamer on a sparse-activity query.

Run: ``python examples/batched_queries.py``
"""

import numpy as np

from repro import EngineSession, EtaGraph, EtaGraphConfig, MemoryMode
from repro.baselines import GTSFramework
from repro.core.multi import pick_sources, run_batch
from repro.graph import generators
from repro.utils.units import format_bytes, format_ms


def main() -> None:
    graph = generators.social_network(30_000, 450_000, seed=14)
    print(f"graph: {graph}\n")

    sources = pick_sources(graph, 8, seed=2)
    with EngineSession(graph) as session:
        batch = run_batch(graph, sources, "bfs", session=session)
        print(f"batch of {len(sources)} BFS queries on one session:")
        print(f"  shared setup (measured topology movement): "
              f"{format_ms(batch.shared_setup_ms)}")
        print(f"  query execution: {format_ms(batch.query_ms)}")
        print(f"  batched total:  {format_ms(batch.total_ms)}")
        print(f"  standalone sum: {format_ms(batch.naive_total_ms)}")
        print(f"  amortization speedup: {batch.amortization_speedup:.2f}x")

        # The session stays warm after the batch: one more query pays no
        # setup and re-migrates no topology pages.
        extra = session.query("bfs", int(sources[0]))
        print(f"  one more warm query: setup {format_ms(extra.setup_ms)}, "
              f"re-migrated {format_bytes(sum(extra.profiler.migration_sizes))}")

    # Fine-grained vs fixed-chunk transfer on a sparse-activity query.
    pocket_graph = generators.web_chain(
        60_000, 600_000, depth=12, pocket_size=50, pocket_depth=4, seed=3
    )
    gts = GTSFramework().run(pocket_graph, "bfs", 0)
    eta = EtaGraph(
        pocket_graph, EtaGraphConfig(memory_mode=MemoryMode.UM_ON_DEMAND)
    ).bfs(0)
    assert np.array_equal(gts.labels, eta.labels)
    print(f"\nsparse-activity query (50-vertex pocket of a "
          f"{pocket_graph.num_vertices:,}-vertex graph):")
    print(f"  GTS fixed 2 MiB chunks streamed: "
          f"{format_bytes(gts.extras['streamed_bytes'])}")
    print(f"  EtaGraph on-demand pages moved:  "
          f"{format_bytes(sum(eta.profiler.migration_sizes))}")


if __name__ == "__main__":
    main()
