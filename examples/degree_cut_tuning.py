#!/usr/bin/env python
"""Sweep the Degree Limit K: load balance vs shared-memory occupancy.

UDC's K bounds each thread's work (small K = better warp balance, more
shadow vertices) while SMP reserves K words of shared memory per thread
(large K = fewer resident warps to hide latency).  This example sweeps K
on a skewed graph and prints where the simulated optimum lands — the
tuning story behind the paper's Section V-B design.

Run: ``python examples/degree_cut_tuning.py``
"""

import numpy as np

from repro import EtaGraph, EtaGraphConfig
from repro.core.udc import degree_cut
from repro.gpu.sharedmem import max_smp_block_threads
from repro.gpu.device import GTX_1080TI
from repro.graph import generators
from repro.utils.tables import render_table


def main() -> None:
    graph = generators.rmat(13, 500_000, seed=5)
    source = int(np.argmax(graph.out_degrees()))
    print(f"graph: {graph}, max degree {graph.max_out_degree()}")

    rows = []
    best = (None, float("inf"))
    for k in (2, 4, 8, 16, 32, 64, 128, 256):
        cfg = EtaGraphConfig(degree_limit=k)
        result = EtaGraph(graph, cfg).bfs(source)
        shadows = degree_cut(
            np.arange(graph.num_vertices), graph.row_offsets, k
        )
        block = max_smp_block_threads(GTX_1080TI, k)
        rows.append([
            k,
            len(shadows),
            f"{len(shadows) / max((graph.out_degrees() > 0).sum(), 1):.2f}",
            block,
            f"{result.kernel_ms:.3f}",
            f"{result.total_ms:.3f}",
        ])
        if result.total_ms < best[1]:
            best = (k, result.total_ms)

    print(render_table(
        ["K", "shadow vertices", "shadows/vertex", "max SMP block",
         "kernel ms", "total ms"],
        rows,
        title="Degree-limit sweep (BFS)",
    ))
    print(f"\nbest K on this graph: {best[0]} ({best[1]:.3f} ms total)")


if __name__ == "__main__":
    main()
