#!/usr/bin/env python
"""Multi-GPU scaling: why the paper stays on one GPU.

Section I: multi-GPU systems communicate over PCIe, whose bandwidth "is
relatively low and the overhead significantly limits the scalability
(often no more than 8 GPUs)".  This example sweeps 1-16 simulated GPUs
on a partitioned traversal and prints the speedup curve and the growing
communication share — also contrasting against the CPU baseline.

Run: ``python examples/multi_gpu_scaling.py``
"""

import numpy as np

from repro.baselines.cpu_ligra import LigraLikeCPU
from repro.gpu.multigpu import scaling_sweep
from repro.graph import generators
from repro.utils.tables import render_table


def main() -> None:
    graph = generators.social_network(60_000, 1_500_000, seed=21)
    source = int(np.argmax(graph.out_degrees()))
    print(f"graph: {graph}\n")

    sweep = scaling_sweep(graph, source, gpu_counts=[1, 2, 4, 8, 16])
    base = sweep[1].total_ms
    rows = []
    for gpus, r in sweep.items():
        rows.append([
            gpus,
            f"{r.total_ms:.3f}",
            f"{base / r.total_ms:.2f}x",
            f"{r.kernel_ms:.3f}",
            f"{r.comm_ms:.3f}",
            f"{100 * r.comm_fraction:.0f}%",
        ])
    print(render_table(
        ["GPUs", "total ms", "speedup", "kernel ms", "comm ms", "comm share"],
        rows,
        title="BFS scaling across simulated GPUs (PCIe-staged exchange)",
    ))

    cpu = LigraLikeCPU().run(graph, "bfs", source)
    print(f"\nfor reference, the shared-memory CPU baseline: "
          f"{cpu.kernel_ms:.3f} ms")
    best = min(sweep.values(), key=lambda r: r.total_ms)
    print(f"best GPU configuration: {best.num_gpus} GPUs at "
          f"{best.total_ms:.3f} ms — communication overhead caps scaling "
          "long before GPU count runs out")


if __name__ == "__main__":
    main()
