"""Benchmark: regenerate Fig. 4 (transfer/compute overlap, w/o UMP SSSP)."""

from conftest import run_experiment

from repro.bench.experiments import exp_fig4


def test_fig4_overlap(benchmark, quick, ctx):
    report = run_experiment(benchmark, exp_fig4.run, quick, ctx)

    for ds, row in report.data.items():
        # Transfer and compute proceed concurrently for a large share of
        # the run (paper: 60-80%).
        assert 0.4 < row["overlap_fraction"] <= 0.95, (ds, row)
        # Transfer finishes by the end of the run (and typically earlier —
        # the paper's "first 60-80% of the time").
        assert row["transfer_done_fraction"] <= 1.0

    if not quick and "uk-2005" in report.data:
        # uk-2005's transfer arrives in waves: pages only migrate when
        # their region first activates, across ~200 iterations.
        series = report.data["uk-2005"]["transfer_series"]
        assert len(series) > 50
