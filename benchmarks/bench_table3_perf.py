"""Benchmark: regenerate Table III (the headline performance comparison).

Quick mode covers the three small datasets (where every framework runs);
``REPRO_BENCH_FULL=1`` sweeps all seven and checks the O.O.M pattern.
"""

from conftest import run_experiment

from repro.bench.experiments import exp_table3


def _cell(report, alg, fw, ds):
    return report.data["cells"][alg][(fw, ds)]


def test_table3_performance(benchmark, quick, ctx):
    report = run_experiment(benchmark, exp_table3.run, quick, ctx)

    # EtaGraph's total beats every surviving baseline's total on the
    # mid-size social graphs (the paper's 1.4-2.5x claim).
    for alg in ("bfs", "sssp"):
        for ds in ("livejournal", "com-orkut"):
            ours = _cell(report, alg, "etagraph", ds)
            assert not ours.oom
            for fw in ("cusha", "gunrock", "tigr"):
                other = _cell(report, alg, fw, ds)
                if not other.oom:
                    assert ours.total_ms < other.total_ms, (
                        f"etagraph should beat {fw} on {ds}/{alg}"
                    )

    # EtaGraph w/o UMP is slower than EtaGraph on full traversals.
    for ds in ("livejournal", "com-orkut"):
        assert (
            _cell(report, "bfs", "etagraph-noump", ds).total_ms
            > _cell(report, "bfs", "etagraph", ds).total_ms
        )

    if quick:
        return

    # --- full-grid shapes -------------------------------------------------
    # O.O.M pattern of Table III.
    for alg in ("bfs", "sssp"):
        assert _cell(report, alg, "cusha", "rmat25").oom
        assert _cell(report, alg, "cusha", "uk-2005").oom
        assert not _cell(report, alg, "gunrock", "uk-2005").oom
        assert _cell(report, alg, "gunrock", "sk-2005").oom
        assert _cell(report, alg, "gunrock", "uk-2006").oom
        assert not _cell(report, alg, "etagraph", "uk-2006").oom
    assert not _cell(report, "bfs", "tigr", "sk-2005").oom
    assert _cell(report, "sssp", "tigr", "sk-2005").oom
    assert _cell(report, "bfs", "tigr", "uk-2006").oom

    # uk-2006 crossover: tiny activatable subgraph makes on-demand win.
    assert (
        _cell(report, "bfs", "etagraph-noump", "uk-2006").total_ms
        < _cell(report, "bfs", "etagraph", "uk-2006").total_ms
    )

    # Deep uk-2005 magnifies frontier selectivity vs Tigr (paper: 3.6x on
    # SSSP; require a clear win).
    eta = _cell(report, "sssp", "etagraph", "uk-2005")
    tigr = _cell(report, "sssp", "tigr", "uk-2005")
    assert eta.total_ms < tigr.total_ms
