"""Benchmark: regenerate Table I (space overhead of graph layouts)."""

from conftest import run_experiment

from repro.bench.experiments import exp_table1


def test_table1_space_overhead(benchmark, quick, ctx):
    report = run_experiment(benchmark, exp_table1.run, quick, ctx)
    normalized = report.data["normalized"]
    measured = report.data["measured_words"]
    bits = report.data["bits_per_edge"]
    # Paper: G-Shard/EdgeList 1.87x, VST 1.32x, CSR 1.00x.
    assert normalized["CSR"] == 1.0
    assert 1.7 < normalized["G-Shard"] < 2.0
    assert 1.7 < normalized["Edge List"] < 2.0
    assert 1.1 < normalized["VST"] < 1.5
    # Dense CSR reproduces the paper's |E| + |V| word count exactly.
    assert measured["CSR"] == \
        report.data["num_edges"] + report.data["num_vertices"]
    # CSR is the most space-efficient *dense* layout...
    assert all(
        v >= 1.0 for k, v in normalized.items() if k != "Compressed CSR"
    )
    # ...and the delta-varint encoding undercuts it.
    assert normalized["Compressed CSR"] < 1.0
    # Every format is accounted in bits; dense word formats are exactly
    # words * 32 / |E|, and the compressed layout beats dense CSR.
    assert set(bits) == set(measured)
    assert all(b > 0 for b in bits.values())
    assert bits["Compressed CSR"] < bits["CSR"]
