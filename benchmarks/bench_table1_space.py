"""Benchmark: regenerate Table I (space overhead of graph layouts)."""

from conftest import run_experiment

from repro.bench.experiments import exp_table1


def test_table1_space_overhead(benchmark, quick, ctx):
    report = run_experiment(benchmark, exp_table1.run, quick, ctx)
    normalized = report.data["normalized"]
    # Paper: G-Shard/EdgeList 1.87x, VST 1.32x, CSR 1.00x.
    assert normalized["CSR"] == 1.0
    assert 1.7 < normalized["G-Shard"] < 2.0
    assert 1.7 < normalized["Edge List"] < 2.0
    assert 1.1 < normalized["VST"] < 1.5
    # CSR must be the most space-efficient layout.
    assert all(v >= 1.0 for v in normalized.values())
