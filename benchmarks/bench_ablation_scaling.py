"""Ablation bench: multi-GPU scaling saturation and CPU comparison.

Executable versions of two Section I claims: PCIe-staged communication
caps multi-GPU scaling well below linear, and a tuned single-GPU
framework at least matches a shared-memory CPU system at scale.
"""

import numpy as np
import pytest

from repro.baselines.cpu_ligra import LigraLikeCPU
from repro.core.api import EtaGraph
from repro.gpu.multigpu import scaling_sweep


@pytest.fixture(scope="module")
def workload(ctx):
    return ctx.load("rmat25", False)


def test_multi_gpu_saturation(benchmark, workload):
    graph, source = workload

    sweep = benchmark.pedantic(
        scaling_sweep, args=(graph, source),
        kwargs={"gpu_counts": [1, 2, 4, 8, 16]},
        rounds=1, iterations=1,
    )
    base = sweep[1].total_ms
    print()
    for gpus, r in sweep.items():
        print(f"  {gpus:>2} GPUs: {r.total_ms:8.3f} ms "
              f"({base / r.total_ms:4.2f}x), comm {100 * r.comm_fraction:.0f}%")

    # Sublinear scaling that flattens: 16 GPUs nowhere near 16x.
    assert base / sweep[16].total_ms < 8.0
    # Adding GPUs eventually stops helping (or actively hurts).
    assert sweep[16].total_ms > 0.5 * sweep[4].total_ms
    # Communication share grows monotonically past 2 GPUs.
    assert sweep[16].comm_fraction > sweep[4].comm_fraction > \
        sweep[2].comm_fraction


def test_gpu_vs_cpu_at_scale(benchmark, workload, ctx):
    graph, source = workload

    def run_both():
        cpu = LigraLikeCPU().run(graph, "bfs", source)
        gpu = EtaGraph(graph, device=ctx.device).bfs(source)
        return cpu, gpu

    cpu, gpu = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert np.array_equal(cpu.labels, gpu.labels)
    print(f"\n  cpu {cpu.kernel_ms:.3f} ms vs gpu kernel {gpu.kernel_ms:.3f} "
          f"ms ({cpu.kernel_ms / gpu.kernel_ms:.2f}x)")
    assert gpu.kernel_ms < cpu.kernel_ms
