"""Ablation bench: robustness to the query source.

The paper evaluates one source per dataset ("the first source node ...
make sure the queried traversal is untrivial").  This bench quantifies
how much that choice matters on a skewed social graph: BFS from several
well-connected sources should produce totals within a small spread, and
EtaGraph's win over the best baseline should hold for *every* source,
not just the reported one.
"""

import numpy as np
import pytest

from repro.baselines import get_framework
from repro.core.api import EtaGraph
from repro.core.multi import pick_sources


@pytest.fixture(scope="module")
def workload(ctx):
    return ctx.load("com-orkut", False)


def test_source_robustness(benchmark, ctx, workload):
    graph, _default = workload
    sources = pick_sources(graph, 6, seed=17, min_degree=5)

    def sweep():
        ours, theirs = [], []
        for s in sources:
            ours.append(EtaGraph(graph, device=ctx.device).bfs(int(s)))
            theirs.append(
                get_framework("tigr", ctx.device).run(graph, "bfs", int(s))
            )
        return ours, theirs

    ours, theirs = benchmark.pedantic(sweep, rounds=1, iterations=1)

    totals = np.array([r.total_ms for r in ours])
    print(f"\n  etagraph totals: min {totals.min():.3f}, "
          f"median {np.median(totals):.3f}, max {totals.max():.3f} ms")

    # The traversal reaches most of the graph from every source...
    for r in ours:
        assert r.visited > 0.5 * graph.num_vertices
    # ...the totals stay within a modest spread...
    assert totals.max() < 2.0 * totals.min()
    # ...and the win over Tigr holds for every source.
    for etag, tigr in zip(ours, theirs):
        assert etag.total_ms < tigr.total_ms

    # Throughput sanity: a plausible simulated GTEPS band for the device.
    for r in ours:
        assert 0.05 < r.kernel_gteps < 100.0
