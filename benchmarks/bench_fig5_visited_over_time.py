"""Benchmark: regenerate Fig. 5 (visited vertices over time)."""

from conftest import run_experiment

from repro.bench.experiments import exp_fig5


def test_fig5_visited_growth(benchmark, quick, ctx):
    report = run_experiment(benchmark, exp_fig5.run, quick, ctx)

    for ds, row in report.data.items():
        series = row["series"]
        assert series, ds
        # Visited count and time are both monotone.
        times = [p[0] for p in series]
        visited = [p[1] for p in series]
        assert times == sorted(times)
        assert visited == sorted(visited)
        if ds == "slashdot":
            # The paper's stated exception: too few iterations to be linear.
            continue
        # Near-linear growth (the paper's consistency claim).  The deep
        # web graphs have enough iterations for a tight fit; the social
        # surrogates converge in ~5 levels at 1/256 scale, so their
        # S-curve fits looser.
        threshold = 0.9 if len(series) > 20 else 0.6
        assert row["r_squared"] > threshold, (ds, row["r_squared"])
