"""Ablation bench: vertex ordering vs the Unified Memory fault pattern.

Isolates the mechanism behind Table V: crawl (BFS) vertex order makes a
wavefront's adjacency contiguous, so the driver merges its faults into
few large migrations; random order fragments them into many 4 KiB ones.
"""

import numpy as np
import pytest

from repro.core.api import EtaGraph
from repro.core.config import EtaGraphConfig, MemoryMode
from repro.graph import generators
from repro.graph.reorder import apply_permutation, random_order, reorder


@pytest.fixture(scope="module")
def base_graph():
    return generators.web_chain(40_000, 400_000, depth=30, seed=11)


def test_ordering_vs_migrations(benchmark, base_graph):
    cfg = EtaGraphConfig(memory_mode=MemoryMode.UM_ON_DEMAND)

    def run_orderings():
        out = {}
        crawl, perm = reorder(base_graph, "bfs", source=0)
        out["crawl"] = EtaGraph(crawl, cfg).bfs(int(perm[0]))
        deg, dperm = reorder(base_graph, "degree")
        out["degree"] = EtaGraph(deg, cfg).bfs(int(dperm[0]))
        rperm = random_order(base_graph, seed=5)
        shuffled = apply_permutation(base_graph, rperm)
        out["random"] = EtaGraph(shuffled, cfg).bfs(int(rperm[0]))
        return out

    results = benchmark.pedantic(run_orderings, rounds=1, iterations=1)

    stats = {}
    print()
    for name, r in results.items():
        sizes = r.profiler.migration_sizes
        stats[name] = (len(sizes), float(np.mean(sizes)))
        print(f"  {name:<7} {len(sizes):5d} migrations, "
              f"avg {np.mean(sizes) / 1024:7.1f} KiB, "
              f"total {r.total_ms:7.3f} ms")

    # Crawl order: fewest, largest migrations; random: most, smallest.
    assert stats["crawl"][0] < stats["random"][0]
    assert stats["crawl"][1] > stats["random"][1]
    # And it is cheaper end-to-end.
    assert results["crawl"].total_ms < results["random"].total_ms
