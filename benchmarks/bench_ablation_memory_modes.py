"""Ablation bench (beyond the paper's figures): all four memory modes.

DESIGN.md calls out the memory-placement decision as the central design
choice of Section IV; this bench sweeps UM+prefetch / UM on-demand /
device / zero-copy on one social graph and asserts the ordering the paper
argues for: UM+prefetch fastest on full traversals, zero-copy slowest.
"""

import numpy as np
import pytest

from repro.core.api import EtaGraph
from repro.core.config import EtaGraphConfig, MemoryMode
from repro.graph import datasets

MODES = [
    MemoryMode.UM_PREFETCH,
    MemoryMode.UM_ON_DEMAND,
    MemoryMode.DEVICE,
    MemoryMode.ZERO_COPY,
]


@pytest.fixture(scope="module")
def workload(ctx):
    return ctx.load("com-orkut", True)


def run_modes(graph, source, device):
    out = {}
    for mode in MODES:
        cfg = EtaGraphConfig(memory_mode=mode)
        out[mode] = EtaGraph(graph, cfg, device).sssp(source)
    return out


def test_memory_mode_ordering(benchmark, ctx, workload):
    graph, source = workload
    results = benchmark.pedantic(
        run_modes, args=(graph, source, ctx.device), rounds=1, iterations=1
    )

    labels = results[MemoryMode.UM_PREFETCH].labels
    for mode, r in results.items():
        assert np.allclose(r.labels, labels), mode

    totals = {m: r.total_ms for m, r in results.items()}
    print()
    for mode, t in sorted(totals.items(), key=lambda kv: kv[1]):
        print(f"  {mode.value:<13} {t:8.3f} ms")

    # Section IV-B's argument, as an ordering: prefetch beats on-demand on
    # a full traversal, and zero-copy loses to every migrating mode.
    assert totals[MemoryMode.UM_PREFETCH] < totals[MemoryMode.UM_ON_DEMAND]
    assert totals[MemoryMode.ZERO_COPY] == max(totals.values())
