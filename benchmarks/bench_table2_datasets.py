"""Benchmark: regenerate Table II (dataset statistics)."""

from conftest import run_experiment

from repro.bench.experiments import exp_table2
from repro.graph import datasets


def test_table2_dataset_stats(benchmark, quick, ctx):
    report = run_experiment(benchmark, exp_table2.run, quick, ctx)
    summaries = report.data["summaries"]
    for name, summary in summaries.items():
        spec = datasets.get_spec(name)
        # Average degree must match the paper's column within 20%.
        assert abs(summary.average_degree - spec.paper.average_degree) \
            < 0.2 * spec.paper.average_degree
        # Scaled |V| should be paper |V| / 256 (Slashdot kept full-scale).
        scale = 1 if name == "slashdot" else datasets.SCALE
        assert summary.num_vertices >= spec.paper.num_vertices // scale * 0.9
    if "uk-2005" in summaries:
        # Web crawls: strongly-connected core around the paper's 65-71%.
        assert 0.5 < summaries["uk-2005"].lcc_fraction < 0.8
