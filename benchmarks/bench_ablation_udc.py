"""Ablation bench (beyond the paper's figures): UDC placement and K.

Two DESIGN.md-listed design choices:

* in-core (the paper's on-the-fly transform) vs out-of-core (precomputed
  shadow table) — time is comparable, but out-of-core pays a device-
  resident table, which is the space argument of Section III-A;
* the degree limit K — sweeps the balance/occupancy trade-off.
"""

import numpy as np
import pytest

from repro.core.api import EtaGraph
from repro.core.config import EtaGraphConfig
from repro.core.udc import ShadowTable


@pytest.fixture(scope="module")
def workload(ctx):
    return ctx.load("livejournal", False)


def test_udc_placement(benchmark, ctx, workload):
    graph, source = workload

    def run_both():
        ic = EtaGraph(graph, EtaGraphConfig(), ctx.device).bfs(source)
        ooc = EtaGraph(
            graph, EtaGraphConfig(udc_mode="out_of_core"), ctx.device
        ).bfs(source)
        return ic, ooc

    ic, ooc = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert np.array_equal(ic.labels, ooc.labels)

    # The space trade: the table costs 3|N| + 2|V| device words that
    # in-core never allocates.
    table = ShadowTable(graph.row_offsets, 32)
    assert ooc.device_bytes - ic.device_bytes >= 4 * table.table_words() * 0.9
    # And it cannot be more than modestly faster — the transform kernel it
    # removes is a small fraction of each iteration.
    assert ooc.total_ms < 1.5 * ic.total_ms
    print(f"\n  in-core {ic.total_ms:.3f} ms, out-of-core {ooc.total_ms:.3f} ms, "
          f"table {4 * table.table_words() / 2**20:.2f} MiB")


def test_degree_limit_sweep(benchmark, ctx, workload):
    graph, source = workload

    def sweep():
        return {
            k: EtaGraph(graph, EtaGraphConfig(degree_limit=k),
                        ctx.device).bfs(source).total_ms
            for k in (4, 16, 32, 128, 512)
        }

    totals = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for k, t in totals.items():
        print(f"  K={k:<4} {t:8.3f} ms")
    # Extreme K values lose to the mid-range: tiny K explodes the shadow
    # count, huge K forfeits balance and SMP occupancy.
    mid = min(totals[16], totals[32])
    assert mid <= totals[4]
    assert mid <= totals[512]
