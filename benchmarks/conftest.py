"""Shared fixtures for the benchmark suite.

Each benchmark wraps one experiment module from
``repro.bench.experiments``; the experiments are deterministic
simulations, so a single round is meaningful — ``benchmark.pedantic``
with one round keeps full-grid runs tractable while still reporting
timing through pytest-benchmark.

Set ``REPRO_BENCH_FULL=1`` to sweep every dataset (several minutes,
generates the large surrogates on first run); the default quick mode
covers the three small graphs.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.runner import BenchContext


def _full() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def quick() -> bool:
    return not _full()


@pytest.fixture(scope="session")
def ctx() -> BenchContext:
    """One dataset cache shared across all benchmarks in the session."""
    return BenchContext()


def run_experiment(benchmark, run_fn, quick, ctx):
    """Execute an experiment once under pytest-benchmark and echo its
    report so ``pytest benchmarks/ --benchmark-only -s`` shows the tables."""
    report = benchmark.pedantic(
        run_fn, kwargs={"quick": quick, "ctx": ctx}, rounds=1, iterations=1
    )
    print()
    print(report.text)
    return report
