"""Ablation bench: fine-grained UM migration vs fixed-chunk streaming.

Executable version of Section I's critique of GTS/Graphie-style designs:
"they need to transfer intact data chunks regardless of how much data are
actually needed".  Sweeps chunk sizes and compares against EtaGraph's
page-granular on-demand migration on a sparse-activity traversal.
"""

import numpy as np
import pytest

from repro.baselines import GTSFramework
from repro.core.api import EtaGraph
from repro.core.config import EtaGraphConfig, MemoryMode
from repro.graph import generators
from repro.utils.units import MIB


@pytest.fixture(scope="module")
def pocket_graph():
    # 60k-vertex web graph; the query source reaches a 50-vertex pocket.
    return generators.web_chain(
        60_000, 600_000, depth=12, pocket_size=50, pocket_depth=4, seed=3
    )


def test_chunk_granularity_sweep(benchmark, pocket_graph):
    def sweep():
        rows = {}
        for chunk in (32 * 1024, 256 * 1024, 2 * MIB):
            r = GTSFramework(chunk_bytes=chunk).run(pocket_graph, "bfs", 0)
            rows[chunk] = r.extras["streamed_bytes"]
        eta = EtaGraph(
            pocket_graph, EtaGraphConfig(memory_mode=MemoryMode.UM_ON_DEMAND)
        ).bfs(0)
        rows["on-demand"] = sum(eta.profiler.migration_sizes)
        return rows, eta

    rows, eta = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for k, v in rows.items():
        label = f"{k // 1024} KiB chunks" if isinstance(k, int) else k
        print(f"  {label:<18} {v / 1024:10.0f} KiB moved")

    # Monotone: finer granularity moves less; page-granular the least.
    assert rows[32 * 1024] <= rows[256 * 1024] <= rows[2 * MIB]
    assert rows["on-demand"] <= rows[32 * 1024]
    # And the gap to coarse chunks is large on sparse activity.
    assert rows["on-demand"] < 0.05 * rows[2 * MIB]


def test_multi_query_amortization(benchmark, ctx):
    """Transfer paid once across a query batch (related-work extension)."""
    from repro.core.multi import pick_sources, run_batch

    graph, _src = ctx.load("livejournal", False)
    sources = pick_sources(graph, 8, seed=1)

    batch = benchmark.pedantic(
        run_batch, args=(graph, sources, "bfs"), rounds=1, iterations=1
    )
    print(f"\n  batched {batch.total_ms:.3f} ms vs standalone "
          f"{batch.naive_total_ms:.3f} ms "
          f"({batch.amortization_speedup:.2f}x)")
    assert batch.amortization_speedup > 1.2
    # Every query produced valid labels.
    for i in range(len(sources)):
        assert np.isfinite(batch.labels(i)).any()
