"""Benchmark: regenerate Fig. 3 (the UDC worked example)."""

from conftest import run_experiment

from repro.bench.experiments import exp_fig3


def test_fig3_udc_example(benchmark, quick, ctx):
    report = run_experiment(benchmark, exp_fig3.run, quick, ctx)
    # The paper's exact outcome: vertex 1 -> two shadows (4 + 1 edges),
    # vertex 2 filtered out, vertex 4 one shadow of degree 2.
    assert report.data["ids"] == [1, 1, 4]
    assert report.data["degrees"] == [4, 1, 2]
