"""Benchmark: regenerate Table V (UM migrated-page sizes)."""

from conftest import run_experiment

from repro.bench.experiments import exp_table5


def test_table5_migration_sizes(benchmark, quick, ctx):
    report = run_experiment(benchmark, exp_table5.run, quick, ctx)
    data = report.data

    for (ds, ump), row in data.items():
        if row["count"] == 0:
            continue
        if ump:
            # Prefetch path: 2 MiB chunks; graphs smaller than one chunk
            # (quick-mode LJ/Orkut at 1/256 scale) move in fewer, smaller
            # pieces but never exceed the chunk size.
            assert row["max_kb"] <= 2048, (ds, row)
            if ds in ("rmat25", "uk-2005"):
                assert row["max_kb"] == 2048, (ds, row)
            assert row["avg_kb"] > 64
        else:
            # Fault path: min at the 4 KiB page, fault-merged runs capped
            # below the driver's 1 MiB migration limit.
            assert row["min_kb"] == 4, (ds, row)
            assert row["max_kb"] <= 1024, (ds, row)
            assert row["avg_kb"] < 512

    # The structural signature: on-demand chunks are much smaller than
    # prefetch chunks on the same dataset.
    for ds in {k[0] for k in data}:
        if data[(ds, False)]["count"] and data[(ds, True)]["count"]:
            assert data[(ds, False)]["avg_kb"] < data[(ds, True)]["avg_kb"]
