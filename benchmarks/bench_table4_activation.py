"""Benchmark: regenerate Table IV (activation % and iteration counts)."""

from conftest import run_experiment

from repro.bench.experiments import exp_table4


def test_table4_activation(benchmark, quick, ctx):
    report = run_experiment(benchmark, exp_table4.run, quick, ctx)
    data = report.data

    # Social graphs: most vertices activate (paper: 91-100%).
    for ds in ("slashdot", "livejournal", "com-orkut"):
        assert data[ds]["act_percent"] > 70

    # Iteration counts in the paper's ballpark for the small graphs.
    for ds in ("slashdot", "livejournal", "com-orkut"):
        assert 4 <= data[ds]["iterations"] <= 25

    if quick:
        return

    # uk-2005's ~200-iteration depth and uk-2006's ~1e-4 activation are
    # the defining Table IV features.
    assert 150 <= data["uk-2005"]["iterations"] <= 250
    assert 30 <= data["sk-2005"]["iterations"] <= 90
    assert data["uk-2006"]["act_percent"] < 0.1
    assert data["uk-2006"]["iterations"] <= 6
    assert data["rmat25"]["act_percent"] > 60
