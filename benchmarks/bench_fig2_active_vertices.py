"""Benchmark: regenerate Fig. 2 (active vertices per iteration)."""

import numpy as np

from conftest import run_experiment

from repro.bench.experiments import exp_fig2


def test_fig2_activation_curve(benchmark, quick, ctx):
    report = run_experiment(benchmark, exp_fig2.run, quick, ctx)

    for ds, series in report.data.items():
        active = np.array(series["active"])
        cum = np.array(series["cumulative"])
        peak = series["peak_iteration"]

        # Growth-then-decay: the peak is interior, the first iteration
        # starts from a single source, the tail is small.
        assert active[0] == 1
        assert 0 < peak < len(active) - 1
        assert active[peak] > 100 * active[0]
        assert active[-1] < 0.05 * active[peak]

        # Cumulative distribution: low early, ~1 at the end, monotone.
        assert cum[0] < 0.01
        assert cum[-1] == 1.0
        assert np.all(np.diff(cum) >= 0)
