"""Benchmark: regenerate Fig. 6 (ablation of SMP and UM)."""

from conftest import run_experiment

from repro.bench.experiments import exp_fig6


def test_fig6_ablation(benchmark, quick, ctx):
    report = run_experiment(benchmark, exp_fig6.run, quick, ctx)
    data = report.data

    for ds, row in data.items():
        if ds == "uk-2006":
            continue
        # SMP helps on every kernel-dominated dataset (paper: 1.11-2.14x).
        assert row["w/o SMP"] is not None
        assert 1.0 < row["w/o SMP"] < 2.5, (ds, row)
        # UM helps too (paper: 1.02-1.26x), with generous tolerance.
        if row["w/o UM"] is not None:
            assert 0.9 < row["w/o UM"] < 1.6, (ds, row)

    if not quick and "uk-2006" in data:
        # The topology exceeds device capacity: impossible without UM.
        assert data["uk-2006"]["w/o UM"] is None
        # And transfer dominance makes SMP irrelevant there (paper:
        # "almost identical for uk-2006").
        assert data["uk-2006"]["w/o SMP"] is not None
        assert data["uk-2006"]["w/o SMP"] < 1.2
