"""Benchmark: regenerate Fig. 7 (SMP microarchitecture metrics)."""

from conftest import run_experiment

from repro.bench.experiments import exp_fig7


def test_fig7_smp_metrics(benchmark, quick, ctx):
    report = run_experiment(benchmark, exp_fig7.run, quick, ctx)
    norm = report.data["normalized"]

    # The two headline effects, with the paper's direction and rough size:
    # fewer global transactions (paper 0.48x)...
    assert 0.3 < norm["global_read_transactions"] < 0.8
    # ...and higher IPC (paper 1.42x).
    assert 1.2 < norm["ipc"] < 2.5

    # Hit rates move up or hold (paper 1.02x / 1.19x).
    assert norm["unified_hit_rate"] >= 1.0
    assert norm["l2_hit_rate"] >= 1.0

    # Read throughput improves at L2 and the unified cache (paper ~2.2x).
    assert norm["l2_read_throughput"] > 1.0
    assert norm["unified_read_throughput"] > 1.0
